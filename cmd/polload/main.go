// Command polload is an open-loop HTTP load generator for the serving
// tier: it fires requests at a fixed arrival rate against one or more
// polserve/polingest nodes (round-robin), draws endpoints from a
// weighted mix, and reports per-endpoint latency quantiles (p50/p90/
// p99/p999) suitable for SLO checks.
//
// Targets are health-checked passively: a transport failure or 5xx
// marks the target unhealthy and the round-robin skips it while a
// background prober polls its /readyz with jittered backoff; the first
// 200 puts it back in rotation. Requests that still fail count as
// errors — polload measures availability, it does not hide it. There is
// deliberately no replication-term routing here (targets may mix
// primaries, replicas and disk-backed servers, where "highest term"
// is meaningless for read traffic); health is the only signal.
//
// Open-loop means the arrival schedule is absolute: request i is
// dispatched at start + i/rate regardless of how fast earlier responses
// came back, so a slow server shows up as tail latency (and eventually
// shed requests) instead of silently throttling the generator — the
// coordinated-omission-free way to measure a serving SLO.
//
// Usage:
//
//	polload -targets http://localhost:8080 -rate 500 -duration 30s
//	polload -targets http://r1:8081,http://r2:8082 \
//	        -mix "info=1,cell=6,destinations=2,eta=1" \
//	        -merge-bench BENCH.json
//
// The summary is printed as JSON; -merge-bench folds it under an "slo"
// key in an existing polbench -json report so serving SLOs live next to
// build benchmarks. -max-p99 turns the run into a gate: exit 1 when the
// overall p99 exceeds it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/patternsoflife/pol/internal/obs"
	"github.com/patternsoflife/pol/internal/obs/trace"
)

// sloBuckets are finer than obs.DefLatencyBuckets at the fast end so
// sub-millisecond local serving still quantizes meaningfully.
var sloBuckets = []float64{
	0.0001, 0.0002, 0.0005, 0.001, 0.002, 0.005, 0.01, 0.02,
	0.05, 0.1, 0.2, 0.5, 1, 2, 5, 10,
}

// endpointStats aggregates one endpoint's outcomes across the run.
type endpointStats struct {
	hist     *obs.Histogram
	requests atomic.Int64
	errors   atomic.Int64
}

// EndpointSummary is the per-endpoint block of the JSON report.
type EndpointSummary struct {
	Requests int64   `json:"requests"`
	Errors   int64   `json:"errors"`
	MeanMs   float64 `json:"mean_ms"`
	P50Ms    float64 `json:"p50_ms"`
	P90Ms    float64 `json:"p90_ms"`
	P99Ms    float64 `json:"p99_ms"`
	P999Ms   float64 `json:"p999_ms"`
}

// Summary is the full JSON report.
type Summary struct {
	Targets       []string                   `json:"targets"`
	RateTarget    float64                    `json:"rate_target"`
	RateAchieved  float64                    `json:"rate_achieved"`
	DurationSecs  float64                    `json:"duration_seconds"`
	Sent          int64                      `json:"sent"`
	Errors        int64                      `json:"errors"`
	Dropped       int64                      `json:"dropped"`
	Overall       EndpointSummary            `json:"overall"`
	Endpoints     map[string]EndpointSummary `json:"endpoints"`
	GeneratedUnix int64                      `json:"generated_unix"`
}

func main() {
	var (
		targets  = flag.String("targets", "http://localhost:8080", "comma-separated base URLs, round-robin")
		rate     = flag.Float64("rate", 200, "total request arrival rate (req/s, open loop)")
		duration = flag.Duration("duration", 10*time.Second, "load duration")
		mix      = flag.String("mix", "info=1,cell=6,destinations=2,eta=1", "endpoint weight mix: name=weight,...")
		bbox     = flag.String("bbox", "45,-10,60,10", "latMin,lngMin,latMax,lngMax box for random cell queries")
		origin   = flag.String("origin", "Rotterdam", "origin port for eta/odcells queries")
		dest     = flag.String("dest", "Hamburg", "destination port for eta/odcells queries")
		timeout  = flag.Duration("timeout", 5*time.Second, "per-request timeout")
		seed     = flag.Int64("seed", 1, "random seed (query coordinates and endpoint draw)")
		inflight = flag.Int("max-inflight", 4096, "cap on concurrently outstanding requests; arrivals past it count as dropped")
		maxP99   = flag.Duration("max-p99", 0, "exit 1 when overall p99 exceeds this (0 disables the gate)")
		merge    = flag.String("merge-bench", "", "merge the summary under an \"slo\" key into this polbench JSON file")
	)
	flag.Parse()

	tlist := splitNonEmpty(*targets)
	if len(tlist) == 0 || *rate <= 0 {
		fmt.Fprintln(os.Stderr, "polload: need -targets and a positive -rate")
		os.Exit(2)
	}
	picker, err := newEndpointPicker(*mix, *bbox, *origin, *dest)
	if err != nil {
		fmt.Fprintln(os.Stderr, "polload:", err)
		os.Exit(2)
	}

	client := &http.Client{
		Timeout: *timeout,
		Transport: &http.Transport{
			MaxIdleConns:        *inflight,
			MaxIdleConnsPerHost: *inflight,
		},
	}
	rng := rand.New(rand.NewSource(*seed))
	ts := newTargetSet(tlist, *timeout)
	defer ts.stop()

	// Every request roots a fresh trace and carries its W3C traceparent,
	// so any latency outlier in the server's histograms has an exemplar
	// pointing at a queryable /v1/traces entry.
	tr := trace.New(trace.Options{Service: "polload"})

	stats := make(map[string]*endpointStats, len(picker.names()))
	for _, name := range picker.names() {
		stats[name] = &endpointStats{hist: obs.NewHistogram(sloBuckets...)}
	}
	overall := &endpointStats{hist: obs.NewHistogram(sloBuckets...)}

	var (
		wg      sync.WaitGroup
		sent    atomic.Int64
		dropped atomic.Int64
		slots   = make(chan struct{}, *inflight)
	)
	interval := time.Duration(float64(time.Second) / *rate)
	start := time.Now()
	deadline := start.Add(*duration)
	for i := 0; ; i++ {
		at := start.Add(time.Duration(i) * interval)
		if at.After(deadline) {
			break
		}
		if d := time.Until(at); d > 0 {
			time.Sleep(d)
		}
		name, path := picker.draw(rng)
		ti := ts.pick()
		u := tlist[ti] + path
		select {
		case slots <- struct{}{}:
		default:
			dropped.Add(1)
			continue
		}
		sent.Add(1)
		wg.Add(1)
		go func(name, u string, ti int) {
			defer wg.Done()
			defer func() { <-slots }()
			es := stats[name]
			es.requests.Add(1)
			span := tr.StartRoot("polload." + strings.TrimPrefix(name, "/v1/"))
			span.SetAttr("url", u)
			t0 := time.Now()
			ok := fire(client, u, span)
			el := time.Since(t0).Seconds()
			if !ok {
				ts.markDown(ti)
				span.MarkError()
				span.Finish()
				es.errors.Add(1)
				overall.errors.Add(1)
				return
			}
			span.Finish()
			es.hist.Observe(el)
			overall.hist.Observe(el)
		}(name, u, ti)
	}
	wg.Wait()
	elapsed := time.Since(start)

	sum := Summary{
		Targets:       tlist,
		RateTarget:    *rate,
		RateAchieved:  float64(sent.Load()) / elapsed.Seconds(),
		DurationSecs:  elapsed.Seconds(),
		Sent:          sent.Load(),
		Errors:        overall.errors.Load(),
		Dropped:       dropped.Load(),
		Overall:       summarize(overall, sent.Load()),
		Endpoints:     map[string]EndpointSummary{},
		GeneratedUnix: time.Now().Unix(),
	}
	for name, es := range stats {
		if es.requests.Load() > 0 {
			sum.Endpoints[name] = summarize(es, es.requests.Load())
		}
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(sum); err != nil {
		fmt.Fprintln(os.Stderr, "polload:", err)
		os.Exit(1)
	}
	if *merge != "" {
		if err := mergeBench(*merge, sum); err != nil {
			fmt.Fprintln(os.Stderr, "polload: merge-bench:", err)
			os.Exit(1)
		}
	}
	if *maxP99 > 0 && sum.Overall.P99Ms > float64(*maxP99)/float64(time.Millisecond) {
		fmt.Fprintf(os.Stderr, "polload: SLO violated: overall p99 %.2fms > %s\n",
			sum.Overall.P99Ms, *maxP99)
		os.Exit(1)
	}
}

// targetSet round-robins over the targets that currently look healthy.
// fire outcomes drive the health bit (any transport failure or 5xx
// marks a target down); a background prober per down target polls its
// /readyz with jittered doubling backoff and restores the target on the
// first 200. When every target is down the full list is used — the
// generator keeps measuring rather than stalling, and the first target
// to answer heals itself through the same fire path.
type targetSet struct {
	bases   []string
	healthy []atomic.Bool
	probing []atomic.Bool
	next    atomic.Int64
	client  *http.Client
	done    chan struct{}
	wg      sync.WaitGroup
}

func newTargetSet(bases []string, timeout time.Duration) *targetSet {
	ts := &targetSet{
		bases:   bases,
		healthy: make([]atomic.Bool, len(bases)),
		probing: make([]atomic.Bool, len(bases)),
		client:  &http.Client{Timeout: timeout},
		done:    make(chan struct{}),
	}
	for i := range ts.healthy {
		ts.healthy[i].Store(true)
	}
	return ts
}

func (ts *targetSet) pick() int {
	n := len(ts.bases)
	start := int(ts.next.Add(1)-1) % n
	for off := 0; off < n; off++ {
		if i := (start + off) % n; ts.healthy[i].Load() {
			return i
		}
	}
	return start
}

func (ts *targetSet) markDown(i int) {
	if !ts.healthy[i].CompareAndSwap(true, false) {
		return
	}
	if !ts.probing[i].CompareAndSwap(false, true) {
		return
	}
	ts.wg.Add(1)
	go func() {
		defer ts.wg.Done()
		defer ts.probing[i].Store(false)
		delay := 100 * time.Millisecond
		for {
			select {
			case <-ts.done:
				return
			case <-time.After(delay/2 + time.Duration(rand.Int63n(int64(delay)))):
			}
			resp, err := ts.client.Get(ts.bases[i] + "/readyz")
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					ts.healthy[i].Store(true)
					return
				}
			}
			if delay *= 2; delay > 2*time.Second {
				delay = 2 * time.Second
			}
		}
	}()
}

func (ts *targetSet) stop() {
	close(ts.done)
	ts.wg.Wait()
}

// fire issues one GET and reports whether the server answered it: any
// status below 500 counts (a 404 for an empty ocean cell is a correctly
// served request whose latency belongs in the SLO); transport failures
// and 5xx are errors. The body is drained so connections can be reused.
func fire(client *http.Client, u string, span *trace.Span) bool {
	req, err := http.NewRequest(http.MethodGet, u, nil)
	if err != nil {
		return false
	}
	trace.Inject(req, span)
	resp, err := client.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	buf := make([]byte, 4096)
	for {
		if _, err := resp.Body.Read(buf); err != nil {
			break
		}
	}
	return resp.StatusCode < 500
}

func summarize(es *endpointStats, requests int64) EndpointSummary {
	s := EndpointSummary{Requests: requests, Errors: es.errors.Load()}
	if n := es.hist.Count(); n > 0 {
		ms := func(q float64) float64 { return es.hist.Quantile(q) * 1000 }
		s.MeanMs = es.hist.Sum() / float64(n) * 1000
		s.P50Ms, s.P90Ms, s.P99Ms, s.P999Ms = ms(0.5), ms(0.9), ms(0.99), ms(0.999)
	}
	return s
}

// mergeBench folds the summary under an "slo" key in a polbench -json
// report, creating the file when absent.
func mergeBench(path string, sum Summary) error {
	doc := map[string]any{}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &doc); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	doc["slo"] = sum
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// endpointPicker draws a weighted endpoint kind and renders its query
// path with randomized parameters.
type endpointPicker struct {
	kinds   []string
	weights []float64
	total   float64

	latMin, latMax float64
	lngMin, lngMax float64
	origin, dest   string
}

func newEndpointPicker(mix, bbox, origin, dest string) (*endpointPicker, error) {
	p := &endpointPicker{origin: origin, dest: dest}
	box := splitNonEmpty(bbox)
	if len(box) != 4 {
		return nil, fmt.Errorf("bad -bbox %q: want latMin,lngMin,latMax,lngMax", bbox)
	}
	vals := make([]float64, 4)
	for i, s := range box {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return nil, fmt.Errorf("bad -bbox %q: %w", bbox, err)
		}
		vals[i] = v
	}
	p.latMin, p.lngMin, p.latMax, p.lngMax = vals[0], vals[1], vals[2], vals[3]
	if p.latMax <= p.latMin || p.lngMax <= p.lngMin {
		return nil, fmt.Errorf("bad -bbox %q: empty box", bbox)
	}
	for _, part := range splitNonEmpty(mix) {
		name, wstr, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("bad -mix entry %q: want name=weight", part)
		}
		w, err := strconv.ParseFloat(wstr, 64)
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("bad -mix weight %q", part)
		}
		switch name {
		case "info", "cell", "destinations", "eta", "odcells":
		default:
			return nil, fmt.Errorf("unknown -mix endpoint %q (have info, cell, destinations, eta, odcells)", name)
		}
		p.kinds = append(p.kinds, name)
		p.weights = append(p.weights, w)
		p.total += w
	}
	if len(p.kinds) == 0 {
		return nil, fmt.Errorf("empty -mix")
	}
	return p, nil
}

func (p *endpointPicker) names() []string {
	out := map[string]bool{}
	for _, k := range p.kinds {
		out["/v1/"+k] = true
	}
	names := make([]string, 0, len(out))
	for n := range out {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// draw picks a kind by weight and returns (stats name, query path).
func (p *endpointPicker) draw(rng *rand.Rand) (string, string) {
	r := rng.Float64() * p.total
	kind := p.kinds[len(p.kinds)-1]
	for i, w := range p.weights {
		if r < w {
			kind = p.kinds[i]
			break
		}
		r -= w
	}
	lat := p.latMin + rng.Float64()*(p.latMax-p.latMin)
	lng := p.lngMin + rng.Float64()*(p.lngMax-p.lngMin)
	switch kind {
	case "info":
		return "/v1/info", "/v1/info"
	case "cell":
		return "/v1/cell", fmt.Sprintf("/v1/cell?lat=%.4f&lng=%.4f", lat, lng)
	case "destinations":
		return "/v1/destinations", fmt.Sprintf("/v1/destinations?lat=%.4f&lng=%.4f&n=5", lat, lng)
	case "eta":
		return "/v1/eta", "/v1/eta?origin=" + url.QueryEscape(p.origin) + "&dest=" + url.QueryEscape(p.dest)
	default: // odcells
		return "/v1/odcells", "/v1/odcells?origin=" + url.QueryEscape(p.origin) + "&dest=" + url.QueryEscape(p.dest)
	}
}

func splitNonEmpty(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if t := strings.TrimSpace(part); t != "" {
			out = append(out, t)
		}
	}
	return out
}
