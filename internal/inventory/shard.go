package inventory

import (
	"sync"

	"github.com/patternsoflife/pol/internal/hexgrid"
)

// The inventory's group map is split into ShardCount hash shards so that
// publishing a live snapshot costs O(micro-batch delta), not O(inventory):
// the single writer tracks which shards a micro-batch touched and Snapshot
// re-copies only those, sharing every clean shard with the previously
// published snapshot. ShardCount is a power of two so shard selection is a
// mask over GroupKey.Hash64.
//
// 256 shards keeps the per-inventory overhead small (a few KB of headers)
// while making the copied fraction of a mostly-clean inventory
// ≈ dirtyShards/256 — a 2-second micro-batch touching a handful of cells
// republishes well under 1/10th of a large inventory instead of all of it.
const ShardCount = 256

// shardFor maps a group key to its shard index.
func shardFor(k GroupKey) int {
	return int(k.Hash64() & (ShardCount - 1))
}

// ShardOf maps a group key to its shard index — the same partitioning the
// in-memory inventory, the dataflow shuffle and the on-disk segment blocks
// all share, so one shard's groups travel together across every layer.
func ShardOf(k GroupKey) int { return shardFor(k) }

// shard is one hash partition of the group map. Shards are shared between
// published snapshots: once published they are immutable except for the
// lazily built OD sub-index, which is mutex-guarded (and, being per shard,
// is built at most once per shard copy no matter how many snapshots share
// it). The writer's private shards are never shared — see
// Inventory.Snapshot.
type shard struct {
	groups map[GroupKey]*CellSummary

	// odMu guards the lazy OD sub-index on shared (published) shards.
	// The single writer invalidates od on its private shards without the
	// lock: writes never run concurrently with reads on the same instance
	// (see the Inventory concurrency contract).
	odMu sync.Mutex
	od   map[odKey][]hexgrid.Cell
}

func newShard() *shard {
	return &shard{groups: make(map[GroupKey]*CellSummary)}
}

// deepCopy returns a fully independent copy of the shard: fresh map, every
// summary duplicated. The OD sub-index is not copied; it rebuilds lazily on
// first query of the copy.
func (sh *shard) deepCopy() *shard {
	c := &shard{groups: make(map[GroupKey]*CellSummary, len(sh.groups))}
	for k, s := range sh.groups {
		d := NewCellSummary()
		d.Merge(s)
		c.groups[k] = d
	}
	return c
}

// odCells returns the cells recorded under the OD grouping set for one
// (origin, dest, vessel-type) key, building the shard's sub-index on first
// use. The returned slice is shared — callers must not mutate it.
func (sh *shard) odCells(k odKey) []hexgrid.Cell {
	sh.odMu.Lock()
	if sh.od == nil {
		sh.od = make(map[odKey][]hexgrid.Cell)
		for gk := range sh.groups {
			if gk.Set == GSCellODType {
				ok := odKey{origin: gk.Origin, dest: gk.Dest, vtype: gk.VType}
				sh.od[ok] = append(sh.od[ok], gk.Cell)
			}
		}
	}
	cells := sh.od[k]
	sh.odMu.Unlock()
	return cells
}
