// ETA example (paper §4.1.2): build an inventory from historical traffic,
// then replay a voyage and compare the inventory's baseline ETA estimates
// against the actual remaining time at several points along the trip.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/patternsoflife/pol/internal/dataflow"
	"github.com/patternsoflife/pol/internal/eta"
	"github.com/patternsoflife/pol/internal/model"
	"github.com/patternsoflife/pol/internal/pipeline"
	"github.com/patternsoflife/pol/internal/ports"
	"github.com/patternsoflife/pol/internal/sim"
)

func main() {
	log.SetFlags(0)

	gaz := ports.Default()
	fleet, err := sim.New(sim.Config{Vessels: 40, Days: 30, Seed: 7}, gaz)
	if err != nil {
		log.Fatal(err)
	}

	// Build the inventory over the whole fleet's history.
	tracks := make([][]model.PositionRecord, 40)
	var voyages []sim.Voyage
	for i := range tracks {
		var voys []sim.Voyage
		tracks[i], voys = fleet.VesselTrack(i)
		voyages = append(voyages, voys...)
	}
	ctx := dataflow.NewContext(0)
	records := dataflow.Generate(ctx, len(tracks), func(i int) []model.PositionRecord { return tracks[i] })
	result, err := pipeline.Run(records, fleet.Fleet().StaticIndex(), ports.NewIndex(gaz, ports.IndexResolution),
		pipeline.Options{Resolution: 6, Description: "eta example"})
	if err != nil {
		log.Fatal(err)
	}
	est := eta.New(result.Inventory)

	// Pick a completed voyage and replay it.
	end := fleet.Config().Start.Unix() + int64(fleet.Config().Days)*86400
	var voyage sim.Voyage
	for _, v := range voyages {
		if v.ArriveTime < end && v.ArriveTime-v.DepartTime > 3*86400 {
			voyage = v
			break
		}
	}
	if voyage.MMSI == 0 {
		log.Fatal("no suitable voyage in the simulation window")
	}
	origin, _ := gaz.ByID(voyage.Route.Origin)
	dest, _ := gaz.ByID(voyage.Route.Dest)
	fmt.Printf("voyage: %s → %s (%.0f km), vessel type %s\n\n",
		origin.Name, dest.Name, voyage.Route.DistM/1000, voyage.VType)
	fmt.Printf("%-10s %-14s %-14s %-14s %s\n", "progress", "actual left", "estimate", "p10–p90", "source")

	var track []model.PositionRecord
	for i, v := range fleet.Fleet().Vessels {
		if v.MMSI == voyage.MMSI {
			for _, r := range tracks[i] {
				if r.Time >= voyage.DepartTime && r.Time <= voyage.ArriveTime {
					track = append(track, r)
				}
			}
		}
	}
	for _, frac := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		r := track[int(float64(len(track)-1)*frac)]
		truth := time.Duration(voyage.ArriveTime-r.Time) * time.Second
		e, ok := est.Estimate(eta.Query{
			Pos: r.Pos, VType: voyage.VType,
			Origin: voyage.Route.Origin, Dest: voyage.Route.Dest,
		})
		if !ok {
			fmt.Printf("%8.0f%%  %-14s (no history at this location)\n", frac*100, truth.Round(time.Minute))
			continue
		}
		fmt.Printf("%8.0f%%  %-14s %-14s %s–%-7s %v\n",
			frac*100,
			truth.Round(time.Minute),
			e.Mean.Round(time.Minute),
			e.P10.Round(time.Hour), e.P90.Round(time.Hour),
			e.Source)
	}
}
