// Destination prediction example (paper §4.1.3): a streaming application
// receives live AIS reports of a vessel whose crew has not disclosed its
// destination, queries the inventory per report for the top destinations of
// same-type vessels that sailed nearby, and tracks the most probable
// destination as the trip unfolds.
package main

import (
	"fmt"
	"log"

	"github.com/patternsoflife/pol/internal/dataflow"
	"github.com/patternsoflife/pol/internal/model"
	"github.com/patternsoflife/pol/internal/pipeline"
	"github.com/patternsoflife/pol/internal/ports"
	"github.com/patternsoflife/pol/internal/predict"
	"github.com/patternsoflife/pol/internal/sim"
)

func main() {
	log.SetFlags(0)

	gaz := ports.Default()
	fleet, err := sim.New(sim.Config{Vessels: 40, Days: 30, Seed: 7}, gaz)
	if err != nil {
		log.Fatal(err)
	}
	tracks := make([][]model.PositionRecord, 40)
	var voyages []sim.Voyage
	for i := range tracks {
		var voys []sim.Voyage
		tracks[i], voys = fleet.VesselTrack(i)
		voyages = append(voyages, voys...)
	}
	ctx := dataflow.NewContext(0)
	records := dataflow.Generate(ctx, len(tracks), func(i int) []model.PositionRecord { return tracks[i] })
	result, err := pipeline.Run(records, fleet.Fleet().StaticIndex(), ports.NewIndex(gaz, ports.IndexResolution),
		pipeline.Options{Resolution: 6, Description: "destination prediction example"})
	if err != nil {
		log.Fatal(err)
	}

	// Stream a completed voyage with its destination hidden.
	end := fleet.Config().Start.Unix() + int64(fleet.Config().Days)*86400
	var voyage sim.Voyage
	for _, v := range voyages {
		if v.ArriveTime < end && v.ArriveTime-v.DepartTime > 4*86400 {
			voyage = v
			break
		}
	}
	if voyage.MMSI == 0 {
		log.Fatal("no suitable voyage")
	}
	var track []model.PositionRecord
	for i, v := range fleet.Fleet().Vessels {
		if v.MMSI == voyage.MMSI {
			for _, r := range tracks[i] {
				if r.Time >= voyage.DepartTime && r.Time <= voyage.ArriveTime {
					track = append(track, r)
				}
			}
		}
	}
	origin, _ := gaz.ByID(voyage.Route.Origin)
	truth, _ := gaz.ByID(voyage.Route.Dest)
	fmt.Printf("streaming a %s vessel departing %s (true destination hidden: %s)\n\n",
		voyage.VType, origin.Name, truth.Name)
	fmt.Printf("%-10s %-42s %s\n", "observed", "top-3 candidates", "true dest rank")

	p := predict.New(result.Inventory, voyage.VType)
	next := 0.1
	for i, r := range track {
		p.Observe(r.Pos)
		progress := float64(i+1) / float64(len(track))
		if progress < next {
			continue
		}
		next += 0.2
		top := p.Top(3)
		rank := "-"
		line := ""
		for j, cand := range top {
			name := fmt.Sprintf("port-%d", cand.Port)
			if pp, ok := gaz.ByID(cand.Port); ok {
				name = pp.Name
			}
			if cand.Port == voyage.Route.Dest {
				rank = fmt.Sprintf("#%d", j+1)
			}
			if j > 0 {
				line += ", "
			}
			line += fmt.Sprintf("%s (%.0f)", name, cand.Score)
		}
		fmt.Printf("%8.0f%%  %-42s %s\n", progress*100, line, rank)
	}
	if best, ok := p.Best(); ok && best == voyage.Route.Dest {
		fmt.Printf("\nfinal prediction correct: %s\n", truth.Name)
	} else {
		fmt.Printf("\nfinal prediction differs from ground truth (%s)\n", truth.Name)
	}
}
