module github.com/patternsoflife/pol

go 1.23
