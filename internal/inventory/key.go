// Package inventory implements the paper's core contribution: the global
// inventory of per-cell statistical summaries (Tables 2 and 3), keyed by
// grouping-set identifiers, with an on-disk format supporting both full
// loads and random access.
package inventory

import (
	"encoding/binary"
	"fmt"

	"github.com/patternsoflife/pol/internal/hexgrid"
	"github.com/patternsoflife/pol/internal/model"
)

// GroupSet selects one of the paper's grouping sets (Table 2).
type GroupSet uint8

// The three grouping sets of Table 2.
const (
	// GSCell groups by cell only: all traffic statistics crossing each cell.
	GSCell GroupSet = 1
	// GSCellType groups by cell and vessel type.
	GSCellType GroupSet = 2
	// GSCellODType groups by cell, origin, destination and vessel type.
	GSCellODType GroupSet = 3
)

// AllGroupSets lists the grouping sets in table order.
var AllGroupSets = []GroupSet{GSCell, GSCellType, GSCellODType}

// String returns the grouping-set identifier as the paper writes it.
func (g GroupSet) String() string {
	switch g {
	case GSCell:
		return "(cell)"
	case GSCellType:
		return "(cell,vessel-type)"
	case GSCellODType:
		return "(cell,origin,destination,vessel-type)"
	default:
		return fmt.Sprintf("GroupSet(%d)", uint8(g))
	}
}

// GroupKey is one group identifier (GI): the concatenation of the grouping
// set's feature values (§3.3.4). Fields not part of the grouping set are
// zero. GroupKey is comparable and serves directly as a dataflow shuffle
// key and map key.
type GroupKey struct {
	Set    GroupSet
	Cell   hexgrid.Cell
	VType  model.VesselType
	Origin model.PortID
	Dest   model.PortID
}

// NewGroupKey builds the group identifier of one observation under the
// given grouping set, zeroing the dimensions the set does not include.
func NewGroupKey(set GroupSet, cell hexgrid.Cell, vt model.VesselType, origin, dest model.PortID) GroupKey {
	k := GroupKey{Set: set, Cell: cell}
	switch set {
	case GSCellType:
		k.VType = vt
	case GSCellODType:
		k.VType = vt
		k.Origin = origin
		k.Dest = dest
	}
	return k
}

// Hash64 provides a fast deterministic hash for dataflow shuffles.
func (k GroupKey) Hash64() uint64 {
	h := uint64(k.Set)
	h = h*0x9e3779b97f4a7c15 + uint64(k.Cell)
	h = h*0x9e3779b97f4a7c15 + uint64(k.VType)
	h = h*0x9e3779b97f4a7c15 + uint64(k.Origin)<<32 | uint64(k.Dest)
	h ^= h >> 29
	h *= 0xbf58476d1ce4e5b9
	return h ^ (h >> 32)
}

// keyBytes is the fixed-width binary encoding of a GroupKey, also its file
// sort order: set, cell, vessel type, origin, destination (big-endian so
// byte order equals logical order).
const keyBytes = 1 + 8 + 1 + 4 + 4

// EncodedKeyLen is the fixed width of the binary GroupKey encoding, exported
// for packages that lay keys out in columns (the segment store).
const EncodedKeyLen = keyBytes

// AppendKey appends the fixed-width big-endian encoding of k; byte order of
// the encoding equals the canonical sort order of keys.
func AppendKey(buf []byte, k GroupKey) []byte { return appendKey(buf, k) }

// DecodeKey decodes a fixed-width key encoding produced by AppendKey.
func DecodeKey(b []byte) (GroupKey, error) { return decodeKey(b) }

// appendKey appends the fixed-width encoding of k.
func appendKey(buf []byte, k GroupKey) []byte {
	buf = append(buf, byte(k.Set))
	buf = binary.BigEndian.AppendUint64(buf, uint64(k.Cell))
	buf = append(buf, byte(k.VType))
	buf = binary.BigEndian.AppendUint32(buf, uint32(k.Origin))
	buf = binary.BigEndian.AppendUint32(buf, uint32(k.Dest))
	return buf
}

// decodeKey decodes a fixed-width key.
func decodeKey(b []byte) (GroupKey, error) {
	if len(b) < keyBytes {
		return GroupKey{}, fmt.Errorf("inventory: short key: %d bytes", len(b))
	}
	return GroupKey{
		Set:    GroupSet(b[0]),
		Cell:   hexgrid.Cell(binary.BigEndian.Uint64(b[1:9])),
		VType:  model.VesselType(b[9]),
		Origin: model.PortID(binary.BigEndian.Uint32(b[10:14])),
		Dest:   model.PortID(binary.BigEndian.Uint32(b[14:18])),
	}, nil
}

// String renders the key for logs and the query tools.
func (k GroupKey) String() string {
	switch k.Set {
	case GSCell:
		return fmt.Sprintf("cell=%v", k.Cell)
	case GSCellType:
		return fmt.Sprintf("cell=%v type=%v", k.Cell, k.VType)
	case GSCellODType:
		return fmt.Sprintf("cell=%v type=%v od=%d→%d", k.Cell, k.VType, k.Origin, k.Dest)
	default:
		return fmt.Sprintf("set=%d cell=%v", k.Set, k.Cell)
	}
}
