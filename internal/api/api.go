// Package api exposes an inventory over HTTP as a JSON API — the online
// querying service the paper describes for maritime stakeholders. The
// polserve command wraps this handler; it is a separate package so the API
// surface is testable with httptest.
//
// Endpoints:
//
//	GET /v1/info                         build info, group counts, live status
//	GET /v1/cell?lat=&lng=[&type=]       per-location statistical summary
//	GET /v1/destinations?lat=&lng=[&n=&type=]  top destinations at a location
//	GET /v1/eta?lat=&lng=[&origin=&dest=&type=]  baseline ETA estimate
//	GET /v1/odcells?origin=&dest=&type=  cells of an OD key
//	GET /v1/forecast?origin=&dest=&type=&lat=&lng=  route forecast (A*)
//
// When a telemetry registry is attached with WithMetrics, every endpoint
// is wrapped in the obs middleware: request counts per status class and a
// latency histogram per endpoint, exposed by the daemon's /metrics.
package api

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"github.com/patternsoflife/pol/internal/eta"
	"github.com/patternsoflife/pol/internal/geo"
	"github.com/patternsoflife/pol/internal/hexgrid"
	"github.com/patternsoflife/pol/internal/inventory"
	"github.com/patternsoflife/pol/internal/model"
	"github.com/patternsoflife/pol/internal/obs"
	"github.com/patternsoflife/pol/internal/obs/trace"
	"github.com/patternsoflife/pol/internal/ports"
	"github.com/patternsoflife/pol/internal/routing"
)

// Source resolves the inventory view a request is answered from. Batch
// serving wraps one loaded file or an opened disk segment; live serving
// hands out the ingestion engine's current atomic snapshot — so every
// request sees a complete, immutable view even while merges continue
// behind it, whether the view lives on the heap or on disk.
type Source interface {
	Inventory() inventory.View
}

// StaticSource serves one fixed inventory view (a loaded heap inventory
// or an open segment reader).
type StaticSource struct{ Inv inventory.View }

// Inventory implements Source.
func (s StaticSource) Inventory() inventory.View { return s.Inv }

// LiveStatus is implemented by live sources (the ingestion engine) that
// can report process uptime and the age of the served snapshot. When the
// Server's source implements it, /v1/info includes a "live" block so
// staleness is visible without client-side math.
type LiveStatus interface {
	Uptime() time.Duration
	SnapshotAge() time.Duration
}

// WALStatus is implemented by sources that replicate (the ingestion
// engine with checkpoints enabled): the newest checkpoint generation,
// the WAL sequence it covers, and the latest appended sequence. /v1/info
// includes them in a "wal" block so replica lag is computable from
// either side of the replication link.
type WALStatus interface {
	WALStatus() (ckptGen, ckptSeq, walSeq uint64)
}

// ReplicaStatus is implemented by replica sources: the applied and
// primary WAL frontiers plus the current replication lag, surfaced as a
// "replica" block in /v1/info.
type ReplicaStatus interface {
	ReplicaStatus() (appliedSeq, primarySeq uint64, lag time.Duration)
}

// Server answers inventory queries over HTTP.
type Server struct {
	src         Source
	gaz         *ports.Gazetteer
	reg         *obs.Registry
	tracer      *trace.Tracer
	maxInFlight int
}

// NewServer builds a Server over a fixed inventory view (a loaded heap
// inventory or an open disk segment) and port gazetteer.
func NewServer(inv inventory.View, gaz *ports.Gazetteer) *Server {
	return NewLiveServer(StaticSource{Inv: inv}, gaz)
}

// NewLiveServer builds a Server that re-resolves the inventory through src
// on every request — the serving mode of the live ingestion daemon.
func NewLiveServer(src Source, gaz *ports.Gazetteer) *Server {
	return &Server{src: src, gaz: gaz}
}

// WithMetrics attaches a telemetry registry: Handler wraps every endpoint
// in the per-endpoint metrics middleware. Returns the Server for
// chaining.
func (s *Server) WithMetrics(reg *obs.Registry) *Server {
	s.reg = reg
	return s
}

// WithTracing attaches a tracer: every endpoint runs under a server
// span that joins a propagated traceparent (or roots a fresh trace), and
// latency histogram buckets carry the trace ID as an OpenMetrics
// exemplar. Returns the Server for chaining.
func (s *Server) WithTracing(tr *trace.Tracer) *Server {
	s.tracer = tr
	return s
}

// WithLoadShedding bounds the query requests concurrently in flight:
// past n, requests are answered immediately with 429 + Retry-After
// instead of queueing, so overload degrades into fast rejections (n <= 0
// disables shedding). Returns the Server for chaining.
func (s *Server) WithLoadShedding(n int) *Server {
	s.maxInFlight = n
	return s
}

// Handler returns the routed HTTP handler.
func (s *Server) Handler() http.Handler {
	routes := []struct {
		endpoint string
		h        http.HandlerFunc
	}{
		{"/v1/info", s.handleInfo},
		{"/v1/cell", s.handleCell},
		{"/v1/destinations", s.handleDestinations},
		{"/v1/eta", s.handleETA},
		{"/v1/odcells", s.handleODCells},
		{"/v1/forecast", s.handleForecast},
	}
	mux := http.NewServeMux()
	for _, rt := range routes {
		var h http.Handler = rt.h
		switch {
		case s.reg != nil:
			h = obs.InstrumentTraced(s.reg, s.tracer, rt.endpoint, h)
		case s.tracer != nil:
			h = s.tracer.Middleware(rt.endpoint, h)
		}
		mux.Handle("GET "+rt.endpoint, h)
	}
	if s.maxInFlight > 0 {
		// Shed outside the router: rejected requests bypass routing and
		// per-endpoint instrumentation entirely (pol_http_shed_total is
		// their only trace), keeping the rejection path allocation-light.
		return obs.Shed(s.reg, s.maxInFlight, mux)
	}
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) parseLatLng(r *http.Request) (geo.LatLng, error) {
	lat, err1 := strconv.ParseFloat(r.URL.Query().Get("lat"), 64)
	lng, err2 := strconv.ParseFloat(r.URL.Query().Get("lng"), 64)
	if err1 != nil || err2 != nil {
		return geo.LatLng{}, fmt.Errorf("lat and lng query parameters are required numbers")
	}
	p := geo.LatLng{Lat: lat, Lng: lng}
	if !p.Valid() {
		return geo.LatLng{}, fmt.Errorf("coordinate out of range")
	}
	return p, nil
}

// ParseVesselType maps the API's type parameter to a market segment.
func ParseVesselType(s string) (model.VesselType, error) {
	switch strings.ToLower(s) {
	case "":
		return model.VesselUnknown, nil
	case "cargo":
		return model.VesselCargo, nil
	case "container":
		return model.VesselContainer, nil
	case "bulk":
		return model.VesselBulk, nil
	case "tanker":
		return model.VesselTanker, nil
	case "passenger":
		return model.VesselPassenger, nil
	default:
		return 0, fmt.Errorf("unknown vessel type %q", s)
	}
}

func (s *Server) resolvePort(v string) (model.PortID, error) {
	if v == "" {
		return model.NoPort, nil
	}
	if id, err := strconv.Atoi(v); err == nil {
		if _, ok := s.gaz.ByID(model.PortID(id)); !ok {
			return model.NoPort, fmt.Errorf("unknown port id %d", id)
		}
		return model.PortID(id), nil
	}
	if p, ok := s.gaz.ByName(v); ok {
		return p.ID, nil
	}
	return model.NoPort, fmt.Errorf("unknown port %q", v)
}

func (s *Server) portName(id model.PortID) string {
	if p, ok := s.gaz.ByID(id); ok {
		return p.Name
	}
	return fmt.Sprintf("port-%d", id)
}

func (s *Server) handleInfo(w http.ResponseWriter, _ *http.Request) {
	inv := s.src.Inventory()
	bi := inv.Info()
	groups := map[string]int{}
	for _, gs := range inventory.AllGroupSets {
		groups[gs.String()] = inv.CountGroups(gs)
	}
	out := map[string]any{
		"resolution":  bi.Resolution,
		"rawRecords":  bi.RawRecords,
		"usedRecords": bi.UsedRecords,
		"builtAt":     time.Unix(bi.BuiltUnix, 0).UTC().Format(time.RFC3339),
		"description": bi.Description,
		"groups":      groups,
		"cells":       len(inv.Cells(inventory.GSCell)),
		"utilization": inv.Utilization(),
	}
	if ls, ok := s.src.(LiveStatus); ok {
		out["live"] = map[string]any{
			"uptimeSeconds":      int64(ls.Uptime().Seconds()),
			"snapshotAgeSeconds": int64(ls.SnapshotAge().Seconds()),
		}
	}
	if ws, ok := s.src.(WALStatus); ok {
		gen, cseq, wseq := ws.WALStatus()
		out["wal"] = map[string]any{
			"ckptGen": gen,
			"ckptSeq": cseq,
			"walSeq":  wseq,
		}
	}
	if rs, ok := s.src.(ReplicaStatus); ok {
		applied, primary, lag := rs.ReplicaStatus()
		out["replica"] = map[string]any{
			"appliedSeq": applied,
			"primarySeq": primary,
			"lagSeconds": lag.Seconds(),
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// Summary is the JSON shape of a cell's statistical summary.
type Summary struct {
	Cell        string      `json:"cell"`
	CenterLat   float64     `json:"centerLat"`
	CenterLng   float64     `json:"centerLng"`
	Records     uint64      `json:"records"`
	Ships       uint64      `json:"ships"`
	Trips       uint64      `json:"trips"`
	SpeedMean   float64     `json:"speedMeanKn"`
	SpeedStd    float64     `json:"speedStdKn"`
	SpeedP10    float64     `json:"speedP10Kn"`
	SpeedP50    float64     `json:"speedP50Kn"`
	SpeedP90    float64     `json:"speedP90Kn"`
	CourseMean  float64     `json:"courseMeanDeg"`
	CourseBins  []uint64    `json:"courseBins30Deg"`
	HeadingMean float64     `json:"headingMeanDeg"`
	ATAMeanSec  float64     `json:"ataMeanSeconds"`
	ETOMeanSec  float64     `json:"etoMeanSeconds"`
	TopOrigins  []PortCount `json:"topOrigins"`
	TopDests    []PortCount `json:"topDestinations"`
	Transitions []CellCount `json:"topTransitions"`
}

// PortCount pairs a port with an observation count.
type PortCount struct {
	Port  string `json:"port"`
	Count uint64 `json:"count"`
}

// CellCount pairs a cell id with an observation count.
type CellCount struct {
	Cell  string `json:"cell"`
	Count uint64 `json:"count"`
}

func (s *Server) summary(cell hexgrid.Cell, cs *inventory.CellSummary) Summary {
	p := cell.LatLng()
	p10, p50, p90 := cs.SpeedPercentiles()
	out := Summary{
		Cell: cell.String(), CenterLat: p.Lat, CenterLng: p.Lng,
		Records: cs.Records, Ships: cs.Ships.Estimate(), Trips: cs.Trips.Estimate(),
		SpeedMean: cs.Speed.Mean(), SpeedStd: cs.Speed.Std(),
		SpeedP10: p10, SpeedP50: p50, SpeedP90: p90,
		CourseMean: cs.Course.Mean(), CourseBins: cs.CourseBins.Bins(),
		HeadingMean: cs.Heading.Mean(),
		ATAMeanSec:  cs.ATA.Mean(), ETOMeanSec: cs.ETO.Mean(),
	}
	for _, e := range cs.Origins.Top(5) {
		out.TopOrigins = append(out.TopOrigins, PortCount{s.portName(model.PortID(e.Key)), e.Count})
	}
	for _, e := range cs.Dests.Top(5) {
		out.TopDests = append(out.TopDests, PortCount{s.portName(model.PortID(e.Key)), e.Count})
	}
	for _, e := range cs.TopTransitions(5) {
		out.Transitions = append(out.Transitions, CellCount{hexgrid.Cell(e.Key).String(), e.Count})
	}
	return out
}

func (s *Server) handleCell(w http.ResponseWriter, r *http.Request) {
	p, err := s.parseLatLng(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	vt, err := ParseVesselType(r.URL.Query().Get("type"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	inv := s.src.Inventory()
	cell := hexgrid.LatLngToCell(p, inv.Info().Resolution)
	var cs *inventory.CellSummary
	var ok bool
	if vt != model.VesselUnknown {
		cs, ok = inv.TypeSummary(cell, vt)
	} else {
		cs, ok = inv.Cell(cell)
	}
	if !ok {
		httpError(w, http.StatusNotFound, "no historical traffic in cell %v", cell)
		return
	}
	writeJSON(w, http.StatusOK, s.summary(cell, cs))
}

func (s *Server) handleDestinations(w http.ResponseWriter, r *http.Request) {
	p, err := s.parseLatLng(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	n, _ := strconv.Atoi(r.URL.Query().Get("n"))
	if n <= 0 {
		n = 5
	}
	vt, err := ParseVesselType(r.URL.Query().Get("type"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	inv := s.src.Inventory()
	cell := hexgrid.LatLngToCell(p, inv.Info().Resolution)
	var cs *inventory.CellSummary
	var ok bool
	if vt != model.VesselUnknown {
		// Same type-filter semantics as /v1/cell: the (cell, vessel-type)
		// grouping set narrows destinations to the requested segment.
		cs, ok = inv.TypeSummary(cell, vt)
	} else {
		cs, ok = inv.Cell(cell)
	}
	if !ok {
		httpError(w, http.StatusNotFound, "no historical traffic at %.3f,%.3f", p.Lat, p.Lng)
		return
	}
	out := []PortCount{}
	for _, e := range cs.Dests.Top(n) {
		out = append(out, PortCount{s.portName(model.PortID(e.Key)), e.Count})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleETA(w http.ResponseWriter, r *http.Request) {
	p, err := s.parseLatLng(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	vt, err := ParseVesselType(r.URL.Query().Get("type"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	origin, err := s.resolvePort(r.URL.Query().Get("origin"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	dest, err := s.resolvePort(r.URL.Query().Get("dest"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// eta.New is a stateless view over the inventory, so constructing one
	// per request keeps it pinned to a single snapshot in live mode.
	est, ok := eta.New(s.src.Inventory()).Estimate(eta.Query{Pos: p, VType: vt, Origin: origin, Dest: dest})
	if !ok {
		httpError(w, http.StatusNotFound, "no ATA history at %.3f,%.3f", p.Lat, p.Lng)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"meanSeconds": est.Mean.Seconds(),
		"stdSeconds":  est.Std.Seconds(),
		"p10Seconds":  est.P10.Seconds(),
		"p50Seconds":  est.P50.Seconds(),
		"p90Seconds":  est.P90.Seconds(),
		"records":     est.Records,
		"source":      est.Source.String(),
	})
}

// CellPos is a cell with its center coordinates.
type CellPos struct {
	Cell string  `json:"cell"`
	Lat  float64 `json:"lat"`
	Lng  float64 `json:"lng"`
}

func (s *Server) handleODCells(w http.ResponseWriter, r *http.Request) {
	origin, dest, vt, err := s.parseODKey(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	cells := s.src.Inventory().ODCells(origin, dest, vt)
	out := make([]CellPos, 0, len(cells))
	for _, c := range cells {
		p := c.LatLng()
		out = append(out, CellPos{c.String(), p.Lat, p.Lng})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) parseODKey(r *http.Request) (model.PortID, model.PortID, model.VesselType, error) {
	origin, err := s.resolvePort(r.URL.Query().Get("origin"))
	if err != nil {
		return 0, 0, 0, err
	}
	dest, err := s.resolvePort(r.URL.Query().Get("dest"))
	if err != nil {
		return 0, 0, 0, err
	}
	vt, err := ParseVesselType(r.URL.Query().Get("type"))
	if err != nil {
		return 0, 0, 0, err
	}
	if origin == model.NoPort || dest == model.NoPort {
		return 0, 0, 0, fmt.Errorf("origin and dest are required")
	}
	return origin, dest, vt, nil
}

func (s *Server) handleForecast(w http.ResponseWriter, r *http.Request) {
	origin, dest, vt, err := s.parseODKey(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	p, err := s.parseLatLng(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	destPort, _ := s.gaz.ByID(dest)
	path, err := routing.Forecast(s.src.Inventory(), origin, dest, vt, p, destPort.Pos)
	switch err {
	case nil:
	case routing.ErrNoHistory:
		httpError(w, http.StatusNotFound, "no inventory history for this key")
		return
	case routing.ErrNoPath:
		httpError(w, http.StatusNotFound, "transition graph has no path")
		return
	default:
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	out := make([]CellPos, 0, len(path))
	for _, c := range path {
		q := c.LatLng()
		out = append(out, CellPos{c.String(), q.Lat, q.Lng})
	}
	writeJSON(w, http.StatusOK, out)
}
