package inventory

import (
	"math/rand"
	"testing"
)

// benchInventory builds a synthetic inventory of n groups spread across the
// shards, plus the key list for delta writes.
func benchInventory(n int) (*Inventory, []GroupKey) {
	rng := rand.New(rand.NewSource(3))
	inv := New(BuildInfo{Resolution: 6})
	keys := randomKeys(rng, n, 6)
	for i, k := range keys {
		inv.Observe(k, testObservation(uint32(200000000+i), int64(i), k.Cell.LatLng()))
	}
	return inv, keys
}

// BenchmarkPublishDelta measures the serving-publish step in isolation: a
// micro-batch delta of 16 keys lands on a 20k-group master, then the state
// is published. cow-snapshot pays only for the few dirtied shards;
// clone-baseline re-copies the whole inventory (the pre-COW publish path).
// This is also the CI smoke benchmark (-bench=Publish -benchtime=1x).
func BenchmarkPublishDelta(b *testing.B) {
	const groups, delta = 20000, 16
	modes := []struct {
		name    string
		publish func(*Inventory) *Inventory
	}{
		{"cow-snapshot", (*Inventory).Snapshot},
		{"clone-baseline", (*Inventory).Clone},
	}
	for _, m := range modes {
		b.Run(m.name, func(b *testing.B) {
			master, keys := benchInventory(groups)
			m.publish(master) // prime: steady-state publishes, not the first full copy
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := 0; j < delta; j++ {
					k := keys[(i*delta+j)%len(keys)]
					master.Observe(k, testObservation(uint32(210000000+j), int64(i*delta+j), k.Cell.LatLng()))
				}
				snap := m.publish(master)
				if snap.Len() != master.Len() {
					b.Fatalf("published %d groups, master has %d", snap.Len(), master.Len())
				}
			}
		})
	}
}
