// Command polserve exposes an inventory over HTTP as a small JSON API —
// the "online querying" deployment the paper describes for stakeholders.
// See internal/api for the endpoint documentation.
//
// Usage:
//
//	polserve -inv fleet.polinv -addr :8080
package main

import (
	"flag"
	"log"
	"net/http"

	"github.com/patternsoflife/pol/internal/api"
	"github.com/patternsoflife/pol/internal/inventory"
	"github.com/patternsoflife/pol/internal/ports"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("polserve: ")

	var (
		invPath = flag.String("inv", "inventory.polinv", "inventory file")
		addr    = flag.String("addr", ":8080", "listen address")
	)
	flag.Parse()

	inv, err := inventory.LoadFile(*invPath)
	if err != nil {
		log.Fatal(err)
	}
	srv := api.NewServer(inv, ports.Default())
	log.Printf("serving %s (%d groups) on %s", *invPath, inv.Len(), *addr)
	log.Fatal(http.ListenAndServe(*addr, srv.Handler()))
}
