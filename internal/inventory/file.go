package inventory

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"

	"github.com/patternsoflife/pol/internal/fault"
)

// File format (little-endian, except keys which are big-endian for sort
// order):
//
//	header:  magic "POLINV1\n" | version u32 | resolution u32 |
//	         rawRecords u64 | usedRecords u64 | builtUnix u64 |
//	         descLen u32 | desc bytes | numGroups u64
//	groups:  numGroups × ( key[18] | summaryLen u32 | summary bytes ),
//	         sorted by key bytes
//	index:   numGroups × ( key[18] | offset u64 )  — offset of the group
//	         entry from file start
//	footer:  indexOffset u64 | magic "POLEND1\n"
//
// The sorted index allows O(log n) random access via ReadAt without loading
// the groups section.

var (
	fileMagic   = []byte("POLINV1\n")
	footerMagic = []byte("POLEND1\n")
)

const fileVersion = 1

// Failpoint names for crash-consistency testing of atomic writes.
const (
	FPWriteSync   = "inventory.writefile.sync"
	FPWriteRename = "inventory.writefile.rename"
)

var fileCRCTable = crc32.MakeTable(crc32.Castagnoli)

// AtomicWrite streams content produced by write into path with full
// crash-safety: the bytes go to a sibling temp file, the file is fsynced,
// renamed over path, and the directory entry is fsynced — so a crash at
// any instant leaves either the old complete file or the new complete
// file at path, never a truncated hybrid.
func AtomicWrite(path string, write func(w io.Writer) error) (err error) {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("inventory: create %s: %w", tmp, err)
	}
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	w := bufio.NewWriterSize(f, 1<<20)
	if err = write(w); err != nil {
		return err
	}
	if err = w.Flush(); err != nil {
		return fmt.Errorf("inventory: flush: %w", err)
	}
	if err = fault.Hit(FPWriteSync); err != nil {
		return fmt.Errorf("inventory: sync: %w", err)
	}
	if err = f.Sync(); err != nil {
		return fmt.Errorf("inventory: sync: %w", err)
	}
	if err = f.Close(); err != nil {
		return fmt.Errorf("inventory: close: %w", err)
	}
	if err = fault.Hit(FPWriteRename); err != nil {
		return fmt.Errorf("inventory: rename: %w", err)
	}
	if err = os.Rename(tmp, path); err != nil {
		return fmt.Errorf("inventory: rename: %w", err)
	}
	if err = syncDir(path); err != nil {
		return fmt.Errorf("inventory: dir sync: %w", err)
	}
	return nil
}

// syncDir fsyncs the directory containing path so a completed rename
// survives a crash.
func syncDir(path string) error {
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// WriteFile persists the inventory to path atomically (temp + fsync +
// rename + directory fsync).
func WriteFile(inv *Inventory, path string) error {
	_, _, err := WriteFileSum(inv, path)
	return err
}

// WriteFileSum is WriteFile plus the CRC32C (Castagnoli) checksum and
// length of the bytes written, computed while streaming — checkpoint
// manifests record them so cold start can verify the artifact without a
// second read.
func WriteFileSum(inv *Inventory, path string) (sum uint32, size int64, err error) {
	err = AtomicWrite(path, func(w io.Writer) error {
		cw := &crcWriter{w: w}
		if _, err := writeTo(inv, cw); err != nil {
			return err
		}
		sum, size = cw.sum, cw.n
		return nil
	})
	return sum, size, err
}

// crcWriter folds a CRC32C over everything written through it.
type crcWriter struct {
	w   io.Writer
	sum uint32
	n   int64
}

func (c *crcWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.sum = crc32.Update(c.sum, fileCRCTable, p[:n])
	c.n += int64(n)
	return n, err
}

// ChecksumFile returns the CRC32C and length of a file's contents, for
// verifying a checkpoint against its manifest entry.
func ChecksumFile(path string) (sum uint32, size int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	h := crc32.New(fileCRCTable)
	n, err := io.Copy(h, f)
	if err != nil {
		return 0, 0, err
	}
	return h.Sum32(), n, nil
}

// writeTo streams the encoded inventory and returns the bytes written.
func writeTo(inv *Inventory, w io.Writer) (int64, error) {
	var written int64
	emit := func(b []byte) error {
		n, err := w.Write(b)
		written += int64(n)
		return err
	}

	info := inv.info
	var head []byte
	head = append(head, fileMagic...)
	head = binary.LittleEndian.AppendUint32(head, fileVersion)
	head = binary.LittleEndian.AppendUint32(head, uint32(info.Resolution))
	head = binary.LittleEndian.AppendUint64(head, uint64(info.RawRecords))
	head = binary.LittleEndian.AppendUint64(head, uint64(info.UsedRecords))
	head = binary.LittleEndian.AppendUint64(head, uint64(info.BuiltUnix))
	head = binary.LittleEndian.AppendUint32(head, uint32(len(info.Description)))
	head = append(head, info.Description...)
	head = binary.LittleEndian.AppendUint64(head, uint64(inv.Len()))
	if err := emit(head); err != nil {
		return written, err
	}

	// Sort keys by encoded bytes.
	type entry struct {
		keyEnc  [keyBytes]byte
		summary *CellSummary
	}
	entries := make([]entry, 0, inv.Len())
	inv.Each(func(k GroupKey, s *CellSummary) bool {
		var e entry
		copy(e.keyEnc[:], appendKey(nil, k))
		e.summary = s
		entries = append(entries, e)
		return true
	})
	sort.Slice(entries, func(i, j int) bool {
		return bytes.Compare(entries[i].keyEnc[:], entries[j].keyEnc[:]) < 0
	})

	type idxEntry struct {
		keyEnc [keyBytes]byte
		offset uint64
	}
	index := make([]idxEntry, 0, len(entries))
	var buf []byte
	for _, e := range entries {
		index = append(index, idxEntry{keyEnc: e.keyEnc, offset: uint64(written)})
		buf = buf[:0]
		buf = append(buf, e.keyEnc[:]...)
		body := e.summary.AppendBinary(nil)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(body)))
		buf = append(buf, body...)
		if err := emit(buf); err != nil {
			return written, err
		}
	}

	indexOffset := uint64(written)
	for _, ie := range index {
		buf = buf[:0]
		buf = append(buf, ie.keyEnc[:]...)
		buf = binary.LittleEndian.AppendUint64(buf, ie.offset)
		if err := emit(buf); err != nil {
			return written, err
		}
	}
	var foot []byte
	foot = binary.LittleEndian.AppendUint64(nil, indexOffset)
	foot = append(foot, footerMagic...)
	if err := emit(foot); err != nil {
		return written, err
	}
	return written, nil
}

// LoadFile reads an entire inventory into memory.
func LoadFile(path string) (*Inventory, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("inventory: read %s: %w", path, err)
	}
	return decodeAll(data)
}

func decodeAll(data []byte) (*Inventory, error) {
	if len(data) < len(fileMagic)+4 || !bytes.Equal(data[:len(fileMagic)], fileMagic) {
		return nil, fmt.Errorf("inventory: bad magic")
	}
	p := data[len(fileMagic):]
	need := func(n int) error {
		if len(p) < n {
			return fmt.Errorf("inventory: truncated file")
		}
		return nil
	}
	if err := need(4); err != nil {
		return nil, err
	}
	version := binary.LittleEndian.Uint32(p)
	p = p[4:]
	if version != fileVersion {
		return nil, fmt.Errorf("inventory: unsupported version %d", version)
	}
	if err := need(4 + 8 + 8 + 8 + 4); err != nil {
		return nil, err
	}
	var info BuildInfo
	info.Resolution = int(binary.LittleEndian.Uint32(p))
	p = p[4:]
	info.RawRecords = int64(binary.LittleEndian.Uint64(p))
	p = p[8:]
	info.UsedRecords = int64(binary.LittleEndian.Uint64(p))
	p = p[8:]
	info.BuiltUnix = int64(binary.LittleEndian.Uint64(p))
	p = p[8:]
	descLen := int(binary.LittleEndian.Uint32(p))
	p = p[4:]
	if err := need(descLen + 8); err != nil {
		return nil, err
	}
	info.Description = string(p[:descLen])
	p = p[descLen:]
	numGroups := binary.LittleEndian.Uint64(p)
	p = p[8:]

	inv := New(info)
	for i := uint64(0); i < numGroups; i++ {
		if err := need(keyBytes + 4); err != nil {
			return nil, err
		}
		key, err := decodeKey(p[:keyBytes])
		if err != nil {
			return nil, err
		}
		p = p[keyBytes:]
		bodyLen := int(binary.LittleEndian.Uint32(p))
		p = p[4:]
		if err := need(bodyLen); err != nil {
			return nil, err
		}
		s, rest, err := DecodeCellSummary(p[:bodyLen])
		if err != nil {
			return nil, fmt.Errorf("inventory: group %d: %w", i, err)
		}
		if len(rest) != 0 {
			return nil, fmt.Errorf("inventory: group %d: %d trailing bytes", i, len(rest))
		}
		p = p[bodyLen:]
		inv.Put(key, s)
	}
	if err := inv.Validate(); err != nil {
		return nil, err
	}
	return inv, nil
}

// Reader provides random access to an inventory file without loading the
// groups: Lookup binary-searches the on-disk index and reads one summary.
type Reader struct {
	f         *os.File
	info      BuildInfo
	numGroups int64
	indexOff  int64
}

// Open opens an inventory file for random access.
func Open(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("inventory: open %s: %w", path, err)
	}
	r := &Reader{f: f}
	if err := r.readHeaderFooter(); err != nil {
		f.Close()
		return nil, err
	}
	return r, nil
}

// Close releases the underlying file.
func (r *Reader) Close() error { return r.f.Close() }

// Info returns the build provenance.
func (r *Reader) Info() BuildInfo { return r.info }

// NumGroups returns the total group count.
func (r *Reader) NumGroups() int64 { return r.numGroups }

func (r *Reader) readHeaderFooter() error {
	// Header.
	head := make([]byte, len(fileMagic)+4+4+8+8+8+4)
	if _, err := io.ReadFull(r.f, head); err != nil {
		return fmt.Errorf("inventory: header: %w", err)
	}
	if !bytes.Equal(head[:len(fileMagic)], fileMagic) {
		return fmt.Errorf("inventory: bad magic")
	}
	p := head[len(fileMagic):]
	if v := binary.LittleEndian.Uint32(p); v != fileVersion {
		return fmt.Errorf("inventory: unsupported version %d", v)
	}
	p = p[4:]
	r.info.Resolution = int(binary.LittleEndian.Uint32(p))
	p = p[4:]
	r.info.RawRecords = int64(binary.LittleEndian.Uint64(p))
	p = p[8:]
	r.info.UsedRecords = int64(binary.LittleEndian.Uint64(p))
	p = p[8:]
	r.info.BuiltUnix = int64(binary.LittleEndian.Uint64(p))
	p = p[8:]
	descLen := int64(binary.LittleEndian.Uint32(p))
	desc := make([]byte, descLen)
	if _, err := io.ReadFull(r.f, desc); err != nil {
		return fmt.Errorf("inventory: description: %w", err)
	}
	r.info.Description = string(desc)
	var ng [8]byte
	if _, err := io.ReadFull(r.f, ng[:]); err != nil {
		return fmt.Errorf("inventory: group count: %w", err)
	}
	r.numGroups = int64(binary.LittleEndian.Uint64(ng[:]))

	// Footer.
	st, err := r.f.Stat()
	if err != nil {
		return err
	}
	footLen := int64(8 + len(footerMagic))
	if st.Size() < footLen {
		return fmt.Errorf("inventory: truncated file")
	}
	foot := make([]byte, footLen)
	if _, err := r.f.ReadAt(foot, st.Size()-footLen); err != nil {
		return fmt.Errorf("inventory: footer: %w", err)
	}
	if !bytes.Equal(foot[8:], footerMagic) {
		return fmt.Errorf("inventory: bad footer magic")
	}
	r.indexOff = int64(binary.LittleEndian.Uint64(foot[:8]))
	const idxEntry = keyBytes + 8
	if r.indexOff <= 0 || r.indexOff+r.numGroups*idxEntry+footLen != st.Size() {
		return fmt.Errorf("inventory: index geometry mismatch")
	}
	return nil
}

// Lookup reads the summary for one group identifier directly from disk,
// using binary search over the sorted index: O(log n) index probes plus one
// group read.
func (r *Reader) Lookup(key GroupKey) (*CellSummary, bool, error) {
	want := appendKey(nil, key)
	const idxEntry = keyBytes + 8
	lo, hi := int64(0), r.numGroups
	var ent [idxEntry]byte
	for lo < hi {
		mid := (lo + hi) / 2
		if _, err := r.f.ReadAt(ent[:], r.indexOff+mid*idxEntry); err != nil {
			return nil, false, fmt.Errorf("inventory: index read: %w", err)
		}
		switch bytes.Compare(ent[:keyBytes], want) {
		case -1:
			lo = mid + 1
		case 0:
			off := int64(binary.LittleEndian.Uint64(ent[keyBytes:]))
			return r.readGroupAt(off, want)
		default:
			hi = mid
		}
	}
	return nil, false, nil
}

func (r *Reader) readGroupAt(off int64, want []byte) (*CellSummary, bool, error) {
	var head [keyBytes + 4]byte
	if _, err := r.f.ReadAt(head[:], off); err != nil {
		return nil, false, fmt.Errorf("inventory: group read: %w", err)
	}
	if !bytes.Equal(head[:keyBytes], want) {
		return nil, false, fmt.Errorf("inventory: index points at wrong group")
	}
	bodyLen := int(binary.LittleEndian.Uint32(head[keyBytes:]))
	body := make([]byte, bodyLen)
	if _, err := r.f.ReadAt(body, off+keyBytes+4); err != nil {
		return nil, false, fmt.Errorf("inventory: group body: %w", err)
	}
	s, rest, err := DecodeCellSummary(body)
	if err != nil {
		return nil, false, err
	}
	if len(rest) != 0 {
		return nil, false, fmt.Errorf("inventory: group has %d trailing bytes", len(rest))
	}
	return s, true, nil
}
