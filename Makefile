# Standard checks for this repository. `make check` is what CI should run.

GO ?= go

.PHONY: check build test vet fmt race benchsmoke bench

check: fmt vet build test race benchsmoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Short race pass over the packages with real concurrency: the live
# ingestion engine, the snapshot-serving inventory and the stream monitor.
race:
	$(GO) test -race -count=1 ./internal/ingest/ ./internal/inventory/ ./internal/stream/

# One-iteration smoke of the snapshot-publish benchmark: catches publish-path
# regressions that compile but break at run time, without benchmark noise.
benchsmoke:
	$(GO) test -run='^$$' -bench=Publish -benchtime=1x ./internal/inventory/

# Full benchmark suite: regenerates BENCH_PR3.json and prints the headline
# publish/shuffle benchmarks (see scripts/bench.sh).
bench:
	./scripts/bench.sh
