// Package replica implements the read-replica side of the scale-out
// serving tier: a stateless process that bootstraps its inventory from a
// primary's generational checkpoints and tails the primary's write-ahead
// log over the /v1/repl HTTP surface (see internal/ingest's ReplHandler).
//
// The replica applies fetched WAL records through a journal-free
// ingestion engine — the exact OnlineCleaner/TripTracker merge path the
// primary runs — so a caught-up replica's snapshot is inventory.Equal to
// the primary's. Correctness relies on three checks, all client-side:
//
//   - whole-file CRC32C and size verification of every checkpoint
//     download against the manifest before anything is installed
//     (truncated or bit-flipped downloads are rejected, never applied);
//   - per-record CRC32C on the WAL stream (the same framing as on disk);
//   - strict sequence contiguity: a record that is not exactly
//     appliedSeq+1 is never applied — duplicates are skipped, gaps force
//     a clean re-bootstrap from the newest checkpoint generation.
//
// Failure handling: connection errors reconnect with jittered
// exponential backoff; a 404 mid-bootstrap (generation rotated away
// between manifest fetch and download) re-fetches the manifest; a 410 on
// the WAL (suffix pruned past the replica's frontier) re-bootstraps.
// Replication lag is exported as the pol_replica_lag_seconds and
// pol_replica_lag_seq gauges and folded into ReadyDetail once it exceeds
// Options.MaxLag.
package replica

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/patternsoflife/pol/internal/fault"
	"github.com/patternsoflife/pol/internal/ingest"
	"github.com/patternsoflife/pol/internal/inventory"
	"github.com/patternsoflife/pol/internal/obs"
	"github.com/patternsoflife/pol/internal/obs/trace"
)

// Failpoints armed via POL_FAILPOINTS to drill the fetch path.
const (
	FPFetchManifest   = "replica.fetch.manifest"
	FPFetchCheckpoint = "replica.fetch.checkpoint"
	FPFetchWAL        = "replica.fetch.wal"
	// FPPromoteDrain fires on every WAL drain round during promotion; an
	// injected error exercises the proceed-from-last-applied path.
	FPPromoteDrain = "replica.promote.drain"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Options configures a Replica.
type Options struct {
	// Primary is the primary's base HTTP URL (e.g. http://host:8080), or a
	// comma-separated list of candidate endpoints. With more than one, the
	// replica probes all of them and tails whichever advertises the highest
	// replication term, switching automatically after a failover.
	Primary string
	// Resolution must match the primary's hexgrid resolution; a manifest
	// reporting a different one is a configuration error and terminal.
	Resolution int
	// MergeEvery is the applier engine's micro-batch tick (default 200ms
	// — replicas favor freshness over merge batching).
	MergeEvery time.Duration
	// MaxLag marks the replica degraded in ReadyDetail once the
	// replication lag exceeds it (default 15s; <= 0 disables).
	MaxLag time.Duration
	// BatchMax bounds the entries requested per WAL poll (default 4096).
	BatchMax int
	// PollWait is the server-side long-poll hold while caught up
	// (default 5s).
	PollWait time.Duration
	// RetryBase and RetryMax bound the jittered exponential reconnect
	// backoff (defaults 250ms and 10s).
	RetryBase time.Duration
	RetryMax  time.Duration
	// TermPath, when set, persists the highest replication term the
	// replica has observed, so a restart keeps rejecting a stale primary
	// it already knows to be demoted (sticky high-water mark).
	TermPath string
	// ProbeEvery is the cadence of background endpoint probes when more
	// than one endpoint is configured (default 2s). Probes carry the
	// term high-water mark, so they also fence stale primaries.
	ProbeEvery time.Duration
	// DrainTimeout bounds the WAL drain during promotion; past it the
	// promotion proceeds from last-applied and logs the lost-seq window
	// (default 3s).
	DrainTimeout time.Duration
	// NodeID identifies the applier engine in term tie-breaks (default:
	// random nonzero).
	NodeID uint64
	// CacheDir, when set, keeps verified checkpoint downloads on disk and
	// skips re-downloading any file whose local CRC32C and size already
	// match the manifest — a restart against an unchanged primary
	// bootstraps without moving the inventory over the network again.
	CacheDir string
	// Client is the HTTP client (default: one without a global timeout;
	// every request carries a context deadline derived from PollWait).
	Client *http.Client
	// Metrics, when non-nil, registers the pol_replica_* gauges and
	// counters (and the applier engine's pol_ingest_* series).
	Metrics *obs.Registry
	// Faults is the failpoint registry for fetch-path drills (default:
	// the process-wide registry armed from POL_FAILPOINTS).
	Faults *fault.Registry
	// Tracer, when non-nil, roots a trace per bootstrap and WAL poll and
	// injects W3C traceparent on every fetch, so the primary's replication
	// handlers record server spans in the same trace. Re-bootstraps dump
	// the flight recorder. The applier engine shares the tracer.
	Tracer *trace.Tracer
	// Description is stored in the applier engine's build info.
	Description string
	// Logf, when non-nil, receives reconnect/re-bootstrap warnings.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	o.Primary = strings.TrimRight(o.Primary, "/")
	if o.Resolution <= 0 {
		o.Resolution = 6
	}
	if o.MergeEvery <= 0 {
		o.MergeEvery = 200 * time.Millisecond
	}
	if o.MaxLag == 0 {
		o.MaxLag = 15 * time.Second
	}
	if o.BatchMax <= 0 {
		o.BatchMax = 4096
	}
	if o.PollWait <= 0 {
		o.PollWait = 5 * time.Second
	}
	if o.RetryBase <= 0 {
		o.RetryBase = 250 * time.Millisecond
	}
	if o.RetryMax <= 0 {
		o.RetryMax = 10 * time.Second
	}
	if o.ProbeEvery <= 0 {
		o.ProbeEvery = 2 * time.Second
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = 3 * time.Second
	}
	if o.Client == nil {
		o.Client = &http.Client{}
	}
	if o.Faults == nil {
		o.Faults = fault.Default()
	}
	if o.Description == "" {
		o.Description = "replica of " + o.Primary
	}
	return o
}

// Control-flow sentinels inside Run.
var (
	errRebootstrap = errors.New("replica: re-bootstrap required")
	errGenRotated  = errors.New("replica: generation rotated away mid-bootstrap")
	errTerminal    = errors.New("replica: terminal configuration error")
	errStaleTerm   = errors.New("replica: endpoint serves a stale term")
)

// ErrPromoted is returned by Run after a successful promotion: the
// replica is now a primary and the replication loop has nothing left to
// tail. The embedded engine keeps serving.
var ErrPromoted = errors.New("replica: promoted to primary")

// throttledError carries a load-shedding primary's Retry-After hint. The
// run loop sleeps exactly the hinted duration instead of counting the
// response as a connection failure and doubling the backoff.
type throttledError struct{ after time.Duration }

func (t throttledError) Error() string {
	return fmt.Sprintf("replica: throttled by primary (retry after %s)", t.after)
}

// Replica tails one primary. Construct with New, drive with Run, serve
// queries from it as an api.Source. All exported methods are safe for
// concurrent use.
type Replica struct {
	opt       Options
	eng       *ingest.Engine
	endpoints []string     // candidate primary base URLs
	cur       atomic.Int64 // index into endpoints currently tailed

	applied      atomic.Uint64 // last WAL seq applied to the engine
	primarySeq   atomic.Uint64 // primary's frontier as of the last poll
	generation   atomic.Uint64 // checkpoint generation bootstrapped from
	bootstrapped atomic.Bool
	lastCaughtUp atomic.Int64 // unix nanos of the last applied==primary poll

	// Term high-water mark: the highest (term, node) pair observed from
	// any endpoint, persisted to TermPath so it survives restarts. Any
	// endpoint advertising a lower pair is a stale primary and is never
	// tailed. hwMu serializes raise-and-persist.
	hwMu     sync.Mutex
	hwTerm   atomic.Uint64
	hwNode   atomic.Uint64
	tailTerm atomic.Uint64 // term the current bootstrap/tail session is pinned to
	promoted atomic.Bool

	promoteReq chan promoteAsk // buffered(1); drained by Run's loop
	wake       chan struct{}   // interrupts backoff sleeps

	bootstraps     atomic.Int64
	rebootstraps   atomic.Int64
	reconnects     atomic.Int64
	crcRejects     atomic.Int64
	cacheHits      atomic.Int64
	throttled      atomic.Int64
	fencingRejects atomic.Int64 // stale-term responses rejected client-side
}

type promoteAsk struct {
	opt   PromoteOptions
	reply chan promoteReply
}

type promoteReply struct {
	res PromoteResult
	err error
}

// New builds the replica and its journal-free applier engine.
func New(opt Options) (*Replica, error) {
	opt = opt.withDefaults()
	if opt.Primary == "" {
		return nil, fmt.Errorf("replica: primary URL required")
	}
	var endpoints []string
	for _, ep := range strings.Split(opt.Primary, ",") {
		ep = strings.TrimRight(strings.TrimSpace(ep), "/")
		if ep == "" {
			continue
		}
		if _, err := url.Parse(ep); err != nil {
			return nil, fmt.Errorf("replica: bad primary URL %q: %w", ep, err)
		}
		endpoints = append(endpoints, ep)
	}
	if len(endpoints) == 0 {
		return nil, fmt.Errorf("replica: primary URL required")
	}
	eng, err := ingest.NewEngine(ingest.Options{
		Resolution:    opt.Resolution,
		MergeEvery:    opt.MergeEvery,
		Description:   opt.Description,
		Metrics:       opt.Metrics,
		Tracer:        opt.Tracer,
		Faults:        opt.Faults,
		NodeID:        opt.NodeID,
		Logf:          opt.Logf,
		ReplicaDriven: true,
	})
	if err != nil {
		return nil, err
	}
	r := &Replica{
		opt:        opt,
		eng:        eng,
		endpoints:  endpoints,
		promoteReq: make(chan promoteAsk, 1),
		wake:       make(chan struct{}, 1),
	}
	r.lastCaughtUp.Store(time.Now().UnixNano())
	if err := r.loadHW(); err != nil {
		eng.Close()
		return nil, err
	}
	if reg := opt.Metrics; reg != nil {
		reg.GaugeFunc("pol_replica_lag_seconds", nil, func() float64 { return r.Lag().Seconds() })
		reg.GaugeFunc("pol_replica_lag_seq", nil, func() float64 { return float64(r.LagSeq()) })
		reg.GaugeFunc("pol_replica_applied_seq", nil, func() float64 { return float64(r.applied.Load()) })
		reg.GaugeFunc("pol_replica_primary_seq", nil, func() float64 { return float64(r.primarySeq.Load()) })
		reg.GaugeFunc("pol_replica_bootstrapped", nil, func() float64 {
			if r.bootstrapped.Load() {
				return 1
			}
			return 0
		})
		reg.CounterFunc("pol_replica_bootstraps_total", nil, func() float64 { return float64(r.bootstraps.Load()) })
		reg.CounterFunc("pol_replica_rebootstraps_total", nil, func() float64 { return float64(r.rebootstraps.Load()) })
		reg.CounterFunc("pol_replica_reconnects_total", nil, func() float64 { return float64(r.reconnects.Load()) })
		reg.CounterFunc("pol_replica_crc_rejects_total", nil, func() float64 { return float64(r.crcRejects.Load()) })
		reg.CounterFunc("pol_replica_cache_hits_total", nil, func() float64 { return float64(r.cacheHits.Load()) })
		reg.CounterFunc("pol_replica_throttled_total", nil, func() float64 { return float64(r.throttled.Load()) })
		reg.CounterFunc("pol_replica_fencing_rejects_total", nil, func() float64 { return float64(r.fencingRejects.Load()) })
		reg.GaugeFunc("pol_replica_term", nil, func() float64 { return float64(r.hwTerm.Load()) })
		reg.GaugeFunc("pol_replica_promoted", nil, func() float64 {
			if r.promoted.Load() {
				return 1
			}
			return 0
		})
	}
	return r, nil
}

// endpoint returns the base URL currently tailed.
func (r *Replica) endpoint() string { return r.endpoints[r.cur.Load()] }

// readTermFile loads a persisted term high-water mark. A missing file is
// (0, 0): no term observed yet.
func readTermFile(path string) (term, node uint64, err error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, 0, nil
	}
	if err != nil {
		return 0, 0, fmt.Errorf("replica: term file: %w", err)
	}
	if _, err := fmt.Sscanf(string(data), "POLTERM1\nterm %d node %x", &term, &node); err != nil {
		return 0, 0, fmt.Errorf("replica: term file %s: malformed: %w", path, err)
	}
	return term, node, nil
}

func writeTermFile(path string, term, node uint64) error {
	return inventory.AtomicWrite(path, func(w io.Writer) error {
		_, werr := fmt.Fprintf(w, "POLTERM1\nterm %d node %016x\n", term, node)
		return werr
	})
}

// loadHW restores the persisted term high-water mark, if any.
func (r *Replica) loadHW() error {
	if r.opt.TermPath == "" {
		return nil
	}
	term, node, err := readTermFile(r.opt.TermPath)
	if err != nil {
		return err
	}
	r.hwTerm.Store(term)
	r.hwNode.Store(node)
	return nil
}

// raiseHW lifts the term high-water mark to (term, node) if it beats the
// current one, persisting the new mark before it takes effect for
// callers. Safe for concurrent use.
func (r *Replica) raiseHW(term, node uint64) error {
	if term == 0 {
		return nil
	}
	r.hwMu.Lock()
	defer r.hwMu.Unlock()
	if !ingest.TermBeats(term, node, r.hwTerm.Load(), r.hwNode.Load()) {
		return nil
	}
	if r.opt.TermPath != "" {
		if err := writeTermFile(r.opt.TermPath, term, node); err != nil {
			return fmt.Errorf("replica: persist term high-water: %w", err)
		}
	}
	r.hwTerm.Store(term)
	r.hwNode.Store(node)
	return nil
}

// noteResponseTerm folds one response's term claim into the high-water
// mark. A response below the mark comes from a stale (demoted) primary:
// it is rejected with errStaleTerm, never applied.
func (r *Replica) noteResponseTerm(h http.Header) error {
	rt, rn := ingest.TermFromHeader(h)
	if rt == 0 {
		return nil // pre-term primary; nothing to compare
	}
	if ingest.TermBeats(r.hwTerm.Load(), r.hwNode.Load(), rt, rn) {
		r.fencingRejects.Add(1)
		return fmt.Errorf("%w: response term %d below high-water %d", errStaleTerm, rt, r.hwTerm.Load())
	}
	return r.raiseHW(rt, rn)
}

func (r *Replica) logf(format string, args ...any) {
	if r.opt.Logf != nil {
		r.opt.Logf(format, args...)
	}
}

// Run drives the replication loop until ctx is cancelled, a terminal
// configuration error (resolution mismatch) is hit, or the replica is
// promoted (ErrPromoted). Connection errors reconnect with jittered
// exponential backoff; pruned WAL suffixes, sequence gaps, and term
// changes re-bootstrap from the newest checkpoint generation; endpoints
// serving a term below the high-water mark are abandoned for the best
// probed sibling.
func (r *Replica) Run(ctx context.Context) error {
	if r.opt.ProbeEvery > 0 && len(r.endpoints) > 1 {
		go r.probeLoop(ctx)
	}
	delay := r.opt.RetryBase
	needBootstrap := true
	for ctx.Err() == nil {
		select {
		case ask := <-r.promoteReq:
			res, err := r.doPromote(ctx, ask.opt)
			ask.reply <- promoteReply{res: res, err: err}
			if err == nil {
				return ErrPromoted
			}
			if r.eng.Fenced() {
				// Lost a promotion race: the engine is fenced and there is
				// nothing useful to tail. The operator restarts this node
				// with a fresh role.
				return fmt.Errorf("%w: %v", errTerminal, err)
			}
			r.logf("replica: promotion failed: %v; resuming tail", err)
			continue
		default:
		}
		if needBootstrap {
			if err := r.bootstrap(ctx); err != nil {
				if errors.Is(err, errTerminal) || ctx.Err() != nil {
					return err
				}
				r.logf("replica bootstrap: %v", err)
				if errors.Is(err, errGenRotated) {
					continue // manifest already stale; refetch immediately
				}
				if errors.Is(err, errStaleTerm) {
					r.probeEndpoints(ctx)
					continue
				}
				var te throttledError
				if errors.As(err, &te) {
					r.throttled.Add(1)
					r.sleepFixed(ctx, te.after)
					continue
				}
				if !r.sleep(ctx, &delay) {
					break
				}
				r.probeEndpoints(ctx)
				continue
			}
			needBootstrap = false
			delay = r.opt.RetryBase
		}
		err := r.tail(ctx)
		if ctx.Err() != nil {
			break
		}
		if errors.Is(err, errPromotePending) {
			continue // loop top drains the request
		}
		var te throttledError
		if errors.As(err, &te) {
			// A load-shedding primary is not a dead primary: honor the
			// hint, keep the frontier, don't touch the backoff.
			r.throttled.Add(1)
			r.sleepFixed(ctx, te.after)
			continue
		}
		if errors.Is(err, errStaleTerm) {
			r.logf("replica: %v; switching endpoint", err)
			r.probeEndpoints(ctx)
			needBootstrap = true
			continue
		}
		if errors.Is(err, errRebootstrap) {
			r.rebootstraps.Add(1)
			r.logf("replica: %v", err)
			if path, ferr := r.opt.Tracer.RecordFlight("rebootstrap"); ferr == nil && path != "" {
				r.logf("flight recorder: re-bootstrap dump at %s", path)
			}
			needBootstrap = true
			continue
		}
		r.reconnects.Add(1)
		r.logf("replica tail: %v; reconnecting", err)
		if !r.sleep(ctx, &delay) {
			break
		}
		r.probeEndpoints(ctx)
	}
	return ctx.Err()
}

// probeLoop re-probes all endpoints on a fixed cadence. Beyond endpoint
// selection, every probe carries the term high-water mark, so a demoted
// primary that comes back is fenced by the first probe that reaches it.
func (r *Replica) probeLoop(ctx context.Context) {
	t := time.NewTicker(r.opt.ProbeEvery)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			r.probeEndpoints(ctx)
		}
	}
}

// probeEndpoints fetches every endpoint's manifest and points cur at the
// one advertising the highest (term, node) pair. Fenced and unreachable
// endpoints are skipped; with no reachable endpoint cur is left alone.
func (r *Replica) probeEndpoints(ctx context.Context) {
	if len(r.endpoints) < 2 {
		return
	}
	best, bestTerm, bestNode := -1, uint64(0), uint64(0)
	for i, ep := range r.endpoints {
		_, status, hdr, err := r.get(ctx, ep+"/v1/repl/manifest", 5*time.Second)
		if err != nil || status != http.StatusOK {
			continue
		}
		rt, rn := ingest.TermFromHeader(hdr)
		if best < 0 || ingest.TermBeats(rt, rn, bestTerm, bestNode) {
			best, bestTerm, bestNode = i, rt, rn
		}
	}
	if best < 0 {
		return
	}
	if err := r.raiseHW(bestTerm, bestNode); err != nil {
		r.logf("replica: %v", err)
	}
	if int64(best) != r.cur.Load() {
		r.logf("replica: switching endpoint %s -> %s (term %d)",
			r.endpoint(), r.endpoints[best], bestTerm)
		r.cur.Store(int64(best))
	}
}

// sleepFixed waits exactly d (a server-provided hint), or less if the
// context ends or a promotion request arrives.
func (r *Replica) sleepFixed(ctx context.Context, d time.Duration) {
	select {
	case <-time.After(d):
	case <-r.wake:
	case <-ctx.Done():
	}
}

// sleep waits one jittered backoff step (±50%), doubling delay up to
// RetryMax. False means the context ended first.
func (r *Replica) sleep(ctx context.Context, delay *time.Duration) bool {
	d := *delay/2 + time.Duration(rand.Int63n(int64(*delay)))
	*delay *= 2
	if *delay > r.opt.RetryMax {
		*delay = r.opt.RetryMax
	}
	select {
	case <-time.After(d):
		return true
	case <-r.wake:
		return true // promotion request pending; loop top handles it
	case <-ctx.Done():
		return false
	}
}

// bootstrap fetches the manifest and installs the newest generation that
// downloads and verifies cleanly, falling back to the older one on a
// checksum mismatch. A 404 mid-download means the primary rotated
// generations under us: errGenRotated asks Run for an immediate retry
// with a fresh manifest.
func (r *Replica) bootstrap(ctx context.Context) (err error) {
	// One trace per bootstrap attempt: the fetch children below inject its
	// traceparent, so the primary's repl_manifest/repl_checkpoint server
	// spans land in the same trace.
	span := r.opt.Tracer.StartRoot("replica.bootstrap")
	ctx = trace.ContextWith(ctx, span)
	defer func() {
		span.SetError(err)
		span.Finish()
	}()
	man, err := r.fetchManifest(ctx)
	if err != nil {
		return err
	}
	if man.Resolution != r.opt.Resolution {
		return fmt.Errorf("%w: primary resolution %d != replica resolution %d",
			errTerminal, man.Resolution, r.opt.Resolution)
	}
	if len(man.Generations) == 0 {
		return fmt.Errorf("primary has no checkpoint generation yet")
	}
	for _, g := range man.Generations {
		invData, err := r.fetchCheckpointFile(ctx, g.Gen, g.Inv, g.InvCRC, g.InvSize)
		if err != nil {
			if errors.Is(err, errGenRotated) {
				return err
			}
			r.logf("replica bootstrap gen %d: %v; trying older generation", g.Gen, err)
			continue
		}
		stateData, err := r.fetchCheckpointFile(ctx, g.Gen, g.State, g.StateCRC, g.StateSize)
		if err != nil {
			if errors.Is(err, errGenRotated) {
				return err
			}
			r.logf("replica bootstrap gen %d: %v; trying older generation", g.Gen, err)
			continue
		}
		inv, err := inventory.Unmarshal(invData)
		if err != nil {
			r.logf("replica bootstrap gen %d: inventory decode: %v", g.Gen, err)
			continue
		}
		if err := r.eng.InstallReplicaState(inv, stateData, g.Seq); err != nil {
			return err
		}
		r.applied.Store(g.Seq)
		r.primarySeq.Store(max(man.WALSeq, g.Seq))
		r.generation.Store(g.Gen)
		r.tailTerm.Store(man.Term)
		r.bootstrapped.Store(true)
		r.bootstraps.Add(1)
		r.logf("replica bootstrapped from %s generation %d (seq %d, term %d, primary at %d)",
			r.endpoint(), g.Gen, g.Seq, man.Term, man.WALSeq)
		return nil
	}
	return fmt.Errorf("no checkpoint generation downloaded and verified cleanly")
}

// errPromotePending bounces tail back to Run's loop top, where the
// promotion request is drained.
var errPromotePending = errors.New("replica: promotion requested")

// tail polls the WAL suffix past the applied frontier, applying verified
// records in strict sequence order. Returns errRebootstrap when the
// suffix is gone (pruned or gapped) or the primary's term changed; any
// other error is a connection problem Run retries against the same
// frontier.
func (r *Replica) tail(ctx context.Context) error {
	for ctx.Err() == nil {
		if len(r.promoteReq) > 0 {
			return errPromotePending
		}
		lastSeq, err := r.pollOnce(ctx, r.opt.PollWait)
		if err != nil {
			return err
		}
		r.primarySeq.Store(max(lastSeq, r.applied.Load()))
		if r.applied.Load() >= lastSeq {
			r.lastCaughtUp.Store(time.Now().UnixNano())
		}
	}
	return ctx.Err()
}

// pollOnce runs one WAL fetch-and-apply round and returns the primary's
// frontier as of the response. Shared by the steady-state tail and the
// promotion drain (which polls with wait=0).
func (r *Replica) pollOnce(ctx context.Context, wait time.Duration) (uint64, error) {
	entries, lastSeq, err := r.fetchWAL(ctx, r.applied.Load(), wait)
	if err != nil {
		return 0, err
	}
	applied := r.applied.Load()
	for _, e := range entries {
		if e.Seq <= applied {
			continue // duplicate delivery; never applied twice
		}
		if e.Seq != applied+1 {
			return 0, fmt.Errorf("%w: WAL gap (got seq %d, want %d)", errRebootstrap, e.Seq, applied+1)
		}
		if err := r.eng.SubmitReplicated(e); err != nil {
			return 0, err
		}
		applied = e.Seq
	}
	if len(entries) > 0 {
		// Barrier: everything submitted above is applied and visible
		// before the frontier advances, so applied never claims a
		// record a concurrent reader cannot see.
		if err := r.eng.PublishNow(); err != nil {
			return 0, err
		}
		r.applied.Store(applied)
	}
	return lastSeq, nil
}

func (r *Replica) fetchManifest(ctx context.Context) (ingest.ReplManifest, error) {
	var man ingest.ReplManifest
	if err := r.opt.Faults.Hit(FPFetchManifest); err != nil {
		return man, err
	}
	body, _, hdr, err := r.get(ctx, r.endpoint()+"/v1/repl/manifest", 30*time.Second)
	if err != nil {
		return man, err
	}
	if err := r.noteResponseTerm(hdr); err != nil {
		return man, err
	}
	if err := json.Unmarshal(body, &man); err != nil {
		return man, fmt.Errorf("replica: manifest decode: %w", err)
	}
	return man, nil
}

// fetchCheckpointFile downloads one generation file and verifies the
// whole-file CRC32C and size against the manifest before returning it —
// a truncated or corrupted download is rejected here, before any byte
// reaches the engine.
func (r *Replica) fetchCheckpointFile(ctx context.Context, gen uint64, name string, wantCRC uint32, wantSize int64) ([]byte, error) {
	// A cached copy whose checksum and size already match the manifest is
	// as good as a verified download: skip the network entirely.
	var cachePath string
	if r.opt.CacheDir != "" {
		cachePath = filepath.Join(r.opt.CacheDir, name)
		if data, err := os.ReadFile(cachePath); err == nil &&
			int64(len(data)) == wantSize && crc32.Checksum(data, castagnoli) == wantCRC {
			r.cacheHits.Add(1)
			return data, nil
		}
	}
	if err := r.opt.Faults.Hit(FPFetchCheckpoint); err != nil {
		return nil, err
	}
	u := fmt.Sprintf("%s/v1/repl/checkpoint/%d/%s", r.endpoint(), gen, url.PathEscape(name))
	body, status, hdr, err := r.get(ctx, u, 2*time.Minute)
	if status == http.StatusNotFound {
		return nil, errGenRotated
	}
	if err != nil {
		return nil, err
	}
	if err := r.noteResponseTerm(hdr); err != nil {
		return nil, err
	}
	if int64(len(body)) != wantSize {
		r.crcRejects.Add(1)
		return nil, fmt.Errorf("replica: %s: truncated download (%d bytes, want %d)", name, len(body), wantSize)
	}
	if sum := crc32.Checksum(body, castagnoli); sum != wantCRC {
		r.crcRejects.Add(1)
		return nil, fmt.Errorf("replica: %s: checksum mismatch (crc %08x, want %08x)", name, sum, wantCRC)
	}
	if cachePath != "" {
		// Best-effort: a failed cache write costs the next bootstrap one
		// download, nothing more.
		if err := os.MkdirAll(r.opt.CacheDir, 0o755); err == nil {
			_ = inventory.AtomicWrite(cachePath, func(w io.Writer) error {
				_, werr := w.Write(body)
				return werr
			})
		}
	}
	return body, nil
}

func (r *Replica) fetchWAL(ctx context.Context, fromSeq uint64, wait time.Duration) ([]ingest.JournalEntry, uint64, error) {
	if err := r.opt.Faults.Hit(FPFetchWAL); err != nil {
		return nil, 0, err
	}
	// One trace per poll cycle: the primary's repl_wal server span joins
	// via the injected traceparent — the cross-process pair the replica
	// e2e asserts.
	span := r.opt.Tracer.StartRoot("replica.wal_poll")
	span.SetAttr("from_seq", fmt.Sprint(fromSeq))
	ctx = trace.ContextWith(ctx, span)
	defer span.Finish()
	u := fmt.Sprintf("%s/v1/repl/wal?from_seq=%d&max=%d&wait=%s",
		r.endpoint(), fromSeq, r.opt.BatchMax, wait)
	body, status, hdr, err := r.get(ctx, u, wait+15*time.Second)
	if status == http.StatusGone {
		err = fmt.Errorf("%w: WAL suffix past seq %d pruned", errRebootstrap, fromSeq)
		span.SetError(err)
		return nil, 0, err
	}
	if err != nil {
		span.SetError(err)
		return nil, 0, err
	}
	if err := r.noteResponseTerm(hdr); err != nil {
		span.SetError(err)
		return nil, 0, err
	}
	// A term change between polls — even to a higher one — means a new
	// primary with its own journal: the local frontier may be ahead of
	// or divergent from its history, so re-bootstrap rather than splice.
	if rt, _ := ingest.TermFromHeader(hdr); rt != r.tailTerm.Load() {
		err = fmt.Errorf("%w: primary term changed %d -> %d", errRebootstrap, r.tailTerm.Load(), rt)
		span.SetError(err)
		return nil, 0, err
	}
	entries, lastSeq, err := ingest.ReadReplChunk(strings.NewReader(string(body)))
	if err != nil {
		r.crcRejects.Add(1)
		span.SetError(err)
		return nil, 0, err
	}
	span.SetAttr("entries", fmt.Sprint(len(entries)))
	return entries, lastSeq, nil
}

// get performs one GET with a per-request deadline, returning the body,
// status, and response headers. Non-2xx statuses return an error
// alongside the status so callers can branch on 404/410. Every request
// carries the term high-water mark, so any stale primary we talk to
// learns it has been demoted; a 429 comes back as throttledError with
// the server's Retry-After hint.
func (r *Replica) get(ctx context.Context, u string, timeout time.Duration) ([]byte, int, http.Header, error) {
	rctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, 0, nil, err
	}
	ingest.SetTermHeader(req.Header, r.hwTerm.Load(), r.hwNode.Load())
	// Child of the ambient bootstrap/poll span (fresh root when there is
	// none); the injected traceparent carries its context to the primary.
	s := r.opt.Tracer.StartChild(trace.FromContext(ctx), "replica.fetch")
	s.SetAttr("url", u)
	trace.Inject(req, s)
	defer s.Finish()
	resp, err := r.opt.Client.Do(req)
	if err != nil {
		s.SetError(err)
		return nil, 0, nil, err
	}
	defer resp.Body.Close()
	s.SetAttr("status", fmt.Sprint(resp.StatusCode))
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		s.SetError(err)
		return nil, resp.StatusCode, resp.Header, err
	}
	if resp.StatusCode == http.StatusTooManyRequests {
		after := time.Second
		if v, perr := strconv.Atoi(strings.TrimSpace(resp.Header.Get("Retry-After"))); perr == nil && v > 0 {
			after = time.Duration(v) * time.Second
		}
		err = throttledError{after: after}
		s.SetError(err)
		return nil, resp.StatusCode, resp.Header, err
	}
	if resp.StatusCode != http.StatusOK {
		err = fmt.Errorf("replica: GET %s: %s: %s",
			u, resp.Status, strings.TrimSpace(string(body)))
		s.SetError(err)
		return nil, resp.StatusCode, resp.Header, err
	}
	return body, resp.StatusCode, resp.Header, nil
}

// PromoteOptions carries the durability targets a promoted replica
// adopts: where the fresh journal and the term-stamped checkpoint
// generation go. Paths must be writable; they name artifacts the new
// primary owns exclusively (never the old primary's files).
type PromoteOptions struct {
	JournalPath     string
	CheckpointPath  string
	CheckpointEvery int
	WALSegmentBytes int64
	// DrainTimeout overrides Options.DrainTimeout for this promotion.
	DrainTimeout time.Duration
}

// PromoteResult reports what the promotion produced.
type PromoteResult struct {
	Term uint64 `json:"term"`
	Node string `json:"node"`
	Seq  uint64 `json:"seq"` // frontier at promotion; the new journal starts at Seq+1
	// LostFrom/LostTo bound the lost-seq window when the drain could not
	// reach the old primary's tip (both zero when the drain completed).
	LostFrom uint64 `json:"lost_from,omitempty"`
	LostTo   uint64 `json:"lost_to,omitempty"`
}

// Promote turns this replica into a primary: drain the WAL tail as far
// as the old primary allows, bump the term past the high-water mark,
// open a fresh journal and a term-stamped checkpoint generation, and
// stop tailing. On success Run returns ErrPromoted and the embedded
// engine accepts writes; on failure the replica keeps tailing and the
// promotion can be retried.
func (r *Replica) Promote(ctx context.Context, po PromoteOptions) (PromoteResult, error) {
	ask := promoteAsk{opt: po, reply: make(chan promoteReply, 1)}
	select {
	case r.promoteReq <- ask:
	case <-ctx.Done():
		return PromoteResult{}, ctx.Err()
	}
	select {
	case r.wake <- struct{}{}:
	default:
	}
	select {
	case rep := <-ask.reply:
		return rep.res, rep.err
	case <-ctx.Done():
		return PromoteResult{}, ctx.Err()
	}
}

// doPromote runs in Run's goroutine, so no WAL fetch races it.
func (r *Replica) doPromote(ctx context.Context, po PromoteOptions) (PromoteResult, error) {
	if !r.bootstrapped.Load() {
		return PromoteResult{}, fmt.Errorf("replica: cannot promote before first bootstrap")
	}
	if po.JournalPath == "" && po.CheckpointPath == "" {
		return PromoteResult{}, fmt.Errorf("replica: promotion needs a journal or checkpoint path")
	}
	timeout := po.DrainTimeout
	if timeout <= 0 {
		timeout = r.opt.DrainTimeout
	}
	// Drain: chase the old primary's tip with non-blocking polls. Any
	// failure — old primary dead, drain failpoint, timeout — means
	// promoting from last-applied and declaring the rest lost.
	var res PromoteResult
	deadline := time.Now().Add(timeout)
	dctx, cancel := context.WithDeadline(ctx, deadline)
	for {
		if err := r.opt.Faults.Hit(FPPromoteDrain); err != nil {
			r.recordLost(&res, r.primarySeq.Load(), fmt.Sprintf("drain failed: %v", err))
			break
		}
		lastSeq, err := r.pollOnce(dctx, 0)
		if err != nil {
			r.recordLost(&res, r.primarySeq.Load(), fmt.Sprintf("drain failed: %v", err))
			break
		}
		r.primarySeq.Store(max(lastSeq, r.applied.Load()))
		if r.applied.Load() >= lastSeq {
			break // caught up with the old primary's tip
		}
		if time.Now().After(deadline) {
			r.recordLost(&res, lastSeq, "drain timeout")
			break
		}
	}
	cancel()
	newTerm := r.hwTerm.Load() + 1
	if err := r.eng.Promote(ingest.PromoteOptions{
		JournalPath:     po.JournalPath,
		CheckpointPath:  po.CheckpointPath,
		CheckpointEvery: po.CheckpointEvery,
		WALSegmentBytes: po.WALSegmentBytes,
		Term:            newTerm,
	}); err != nil {
		return PromoteResult{}, err
	}
	// Persist the high-water mark only after the engine committed the new
	// term: a failed promotion must not leave this replica rejecting the
	// primary it still depends on.
	if err := r.raiseHW(newTerm, r.eng.Node()); err != nil {
		r.logf("replica: %v", err)
	}
	r.promoted.Store(true)
	res.Term = newTerm
	res.Node = fmt.Sprintf("%016x", r.eng.Node())
	res.Seq = r.applied.Load()
	r.logf("replica: promoted to primary at term %d (seq %d)", newTerm, res.Seq)
	// Split-brain check: if a sibling won a racing promotion with a
	// beating (term, node) pair, fence ourselves now instead of waiting
	// for its first replication request to do it.
	for _, ep := range r.endpoints {
		_, _, hdr, err := r.get(ctx, ep+"/v1/repl/manifest", 2*time.Second)
		if err != nil && hdr == nil {
			continue
		}
		if rt, rn := ingest.TermFromHeader(hdr); r.eng.ObserveRemoteTerm(rt, rn) {
			if herr := r.raiseHW(rt, rn); herr != nil {
				r.logf("replica: %v", herr)
			}
			return res, fmt.Errorf("replica: lost promotion race to %s (term %d, node %016x); fenced", ep, rt, rn)
		}
	}
	return res, nil
}

// recordLost notes the lost-seq window once (the first drain failure is
// the authoritative one).
func (r *Replica) recordLost(res *PromoteResult, target uint64, why string) {
	applied := r.applied.Load()
	if target <= applied || res.LostTo != 0 {
		return
	}
	res.LostFrom, res.LostTo = applied+1, target
	r.logf("replica: promotion proceeds from seq %d; lost-seq window [%d, %d] (%s) — re-feed that range upstream",
		applied, res.LostFrom, res.LostTo, why)
}

// PromoteConfig is the daemon-side wiring for PromoteHandler: the
// durability targets promotion adopts, fixed at startup by flags.
type PromoteConfig struct {
	JournalPath     string
	CheckpointPath  string
	CheckpointEvery int
	WALSegmentBytes int64
	DrainTimeout    time.Duration
}

// PromoteHandler serves POST /v1/admin/promote: runs the promotion with
// the configured targets and reports the PromoteResult as JSON. A
// successful promotion also invokes onPromoted (may be nil) — daemons
// use it to open their NMEA feed listener.
func (r *Replica) PromoteHandler(cfg PromoteConfig, onPromoted func()) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		res, err := r.Promote(req.Context(), PromoteOptions{
			JournalPath:     cfg.JournalPath,
			CheckpointPath:  cfg.CheckpointPath,
			CheckpointEvery: cfg.CheckpointEvery,
			WALSegmentBytes: cfg.WALSegmentBytes,
			DrainTimeout:    cfg.DrainTimeout,
		})
		if err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		if onPromoted != nil {
			onPromoted()
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(res)
	})
}

// Engine exposes the applier engine so a promoted replica's daemon can
// mount the full primary surface (/v1/repl, ingest stats, NMEA feeds).
func (r *Replica) Engine() *ingest.Engine { return r.eng }

// Promoted reports whether this replica has become a primary.
func (r *Replica) Promoted() bool { return r.promoted.Load() }

// WALStatus implements api.WALStatus so /v1/info on a promoted replica
// shows its journal frontier.
func (r *Replica) WALStatus() (ckptGen, ckptSeq, walSeq uint64) { return r.eng.WALStatus() }

// Inventory implements api.Source: queries resolve against the applier
// engine's current snapshot.
func (r *Replica) Inventory() inventory.View { return r.eng.Snapshot() }

// Snapshot returns the applier engine's current snapshot as the concrete
// heap type, for tests and tools that compare inventories bit-exactly.
func (r *Replica) Snapshot() *inventory.Inventory { return r.eng.Snapshot() }

// Uptime implements api.LiveStatus.
func (r *Replica) Uptime() time.Duration { return r.eng.Uptime() }

// SnapshotAge implements api.LiveStatus.
func (r *Replica) SnapshotAge() time.Duration { return r.eng.SnapshotAge() }

// AppliedSeq returns the replication frontier: the last WAL sequence
// applied to the local engine.
func (r *Replica) AppliedSeq() uint64 { return r.applied.Load() }

// PrimarySeq returns the primary's WAL frontier as of the last
// successful poll.
func (r *Replica) PrimarySeq() uint64 { return r.primarySeq.Load() }

// LagSeq returns how many WAL records the replica trails the primary by.
func (r *Replica) LagSeq() uint64 {
	p, a := r.primarySeq.Load(), r.applied.Load()
	if p <= a {
		return 0
	}
	return p - a
}

// Lag returns the time since the replica last observed itself caught up
// with the primary — near zero while tailing an idle or keeping pace
// with a busy primary, growing monotonically while disconnected or
// behind.
func (r *Replica) Lag() time.Duration {
	if r.promoted.Load() {
		return 0 // a primary has nothing to lag behind
	}
	d := time.Since(time.Unix(0, r.lastCaughtUp.Load()))
	if d < 0 {
		return 0
	}
	return d
}

// ReplicaStatus implements api.ReplicaStatus for the /v1/info block.
func (r *Replica) ReplicaStatus() (appliedSeq, primarySeq uint64, lag time.Duration) {
	return r.applied.Load(), r.primarySeq.Load(), r.Lag()
}

// ReadyDetail implements the obs.ReadyzDetailHandler contract: not ready
// until the first bootstrap installs a snapshot; ready-but-degraded with
// the lag in the detail once replication falls more than MaxLag behind.
func (r *Replica) ReadyDetail() (bool, string) {
	if r.promoted.Load() {
		return r.eng.ReadyDetail() // a primary now; lag is meaningless
	}
	if !r.bootstrapped.Load() {
		return false, "replica: not bootstrapped yet"
	}
	if lag := r.Lag(); r.opt.MaxLag > 0 && lag > r.opt.MaxLag {
		return true, fmt.Sprintf("degraded: replication lag %s (%d seqs behind)",
			lag.Round(time.Millisecond), r.LagSeq())
	}
	return true, ""
}

// Status is the JSON document served by StatusHandler.
type Status struct {
	Primary        string  `json:"primary"`
	Endpoints      int     `json:"endpoints"`
	Bootstrapped   bool    `json:"bootstrapped"`
	Promoted       bool    `json:"promoted"`
	Term           uint64  `json:"term"`
	Node           string  `json:"node"`
	Generation     uint64  `json:"generation"`
	AppliedSeq     uint64  `json:"applied_seq"`
	PrimarySeq     uint64  `json:"primary_seq"`
	LagSeq         uint64  `json:"lag_seq"`
	LagSeconds     float64 `json:"lag_seconds"`
	Bootstraps     int64   `json:"bootstraps"`
	Rebootstraps   int64   `json:"rebootstraps"`
	Reconnects     int64   `json:"reconnects"`
	CRCRejects     int64   `json:"crc_rejects"`
	CacheHits      int64   `json:"cache_hits"`
	Throttled      int64   `json:"throttled"`
	FencingRejects int64   `json:"fencing_rejects"`
	Groups         int64   `json:"groups"`
}

// StatusSnapshot collects the current replication counters.
func (r *Replica) StatusSnapshot() Status {
	s := Status{
		Primary:        r.endpoint(),
		Endpoints:      len(r.endpoints),
		Bootstrapped:   r.bootstrapped.Load(),
		Promoted:       r.promoted.Load(),
		Term:           r.hwTerm.Load(),
		Node:           fmt.Sprintf("%016x", r.hwNode.Load()),
		Generation:     r.generation.Load(),
		AppliedSeq:     r.applied.Load(),
		PrimarySeq:     r.primarySeq.Load(),
		LagSeq:         r.LagSeq(),
		LagSeconds:     r.Lag().Seconds(),
		Bootstraps:     r.bootstraps.Load(),
		Rebootstraps:   r.rebootstraps.Load(),
		Reconnects:     r.reconnects.Load(),
		CRCRejects:     r.crcRejects.Load(),
		CacheHits:      r.cacheHits.Load(),
		Throttled:      r.throttled.Load(),
		FencingRejects: r.fencingRejects.Load(),
	}
	if snap := r.eng.Snapshot(); snap != nil {
		s.Groups = int64(snap.Len())
	}
	return s
}

// StatusHandler serves the replication counters as JSON
// (/v1/replica/status on a replica daemon).
func (r *Replica) StatusHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.StatusSnapshot())
	})
}

// SnapshotHandler serves the replica's current inventory in POLINV1 wire
// form — the artifact convergence checks compare against the primary's
// /v1/repl/snapshot.
func (r *Replica) SnapshotHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		snap := r.eng.Snapshot()
		if snap == nil {
			http.Error(w, "no snapshot yet", http.StatusServiceUnavailable)
			return
		}
		data, err := inventory.Marshal(snap)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		_, _ = w.Write(data)
	})
}

// Close shuts down the applier engine. Cancel Run's context first.
func (r *Replica) Close() error { return r.eng.Close() }
