package inventory

import (
	"testing"

	"github.com/patternsoflife/pol/internal/model"
)

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	fine, dense := buildFineInventory(t)
	data, err := Marshal(fine)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(fine, back) {
		t.Fatal("round-tripped inventory differs from the original")
	}
	if back.Info() != fine.Info() {
		t.Errorf("build info %+v, want %+v", back.Info(), fine.Info())
	}
	// The round-tripped copy is mutable (not a frozen snapshot).
	s, _ := back.Get(GroupKey{Set: GSCell, Cell: dense})
	if s == nil {
		t.Fatal("dense cell missing after round trip")
	}
	if _, err := Unmarshal(data[:len(data)/2]); err == nil {
		t.Error("truncated image must fail to decode")
	}
}

func TestEqualDetectsDifferences(t *testing.T) {
	a, dense := buildFineInventory(t)
	b, _ := buildFineInventory(t)
	if !Equal(a, b) {
		t.Fatal("identical builds must compare equal")
	}
	if !Equal(a.Snapshot(), b) {
		t.Fatal("a frozen snapshot must compare equal to its source's twin")
	}

	// A single extra observation in one group breaks equality.
	key := GroupKey{Set: GSCell, Cell: dense}
	s, _ := b.Get(key)
	rec := model.TripRecord{}
	rec.MMSI = 999999999
	rec.Time = 42
	rec.Pos = dense.LatLng()
	b.Observe(key, Observation{Rec: rec})
	_ = s
	if Equal(a, b) {
		t.Fatal("diverged summaries must compare unequal")
	}

	// Group-count and resolution mismatches.
	c := New(a.Info())
	if Equal(a, c) {
		t.Fatal("different group counts must compare unequal")
	}
	info := a.Info()
	info.Resolution++
	d := New(info)
	if Equal(c, d) {
		t.Fatal("different resolutions must compare unequal")
	}
	if !Equal(nil, nil) || Equal(a, nil) {
		t.Fatal("nil handling")
	}
}
