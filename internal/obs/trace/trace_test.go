package trace

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestIDGeneration(t *testing.T) {
	seen := make(map[TraceID]bool)
	for i := 0; i < 1000; i++ {
		id := NewTraceID()
		if id.IsZero() {
			t.Fatal("zero trace id generated")
		}
		if seen[id] {
			t.Fatalf("duplicate trace id %s", id)
		}
		seen[id] = true
	}
	if NewSpanID().IsZero() {
		t.Fatal("zero span id generated")
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	sc := SpanContext{TraceID: NewTraceID(), SpanID: NewSpanID()}
	tp := FormatTraceparent(sc)
	if len(tp) != 55 {
		t.Fatalf("traceparent length %d, want 55: %q", len(tp), tp)
	}
	got, ok := ParseTraceparent(tp)
	if !ok {
		t.Fatalf("round-trip parse failed for %q", tp)
	}
	if got != sc {
		t.Fatalf("round trip changed context: %+v != %+v", got, sc)
	}
}

// TestTraceparentMalformedProperty fuzzes the parser with random
// mutations of valid values plus random garbage: no input may parse into
// a context that formats differently from itself, and mutations that
// break the grammar must be rejected rather than panic.
func TestTraceparentMalformedProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	alphabet := "0123456789abcdefABCDEF-xyz !\x00\xff"
	valid := FormatTraceparent(SpanContext{TraceID: NewTraceID(), SpanID: NewSpanID()})
	for i := 0; i < 5000; i++ {
		var input string
		switch rng.Intn(4) {
		case 0: // random garbage of random length
			n := rng.Intn(80)
			b := make([]byte, n)
			for j := range b {
				b[j] = alphabet[rng.Intn(len(alphabet))]
			}
			input = string(b)
		case 1: // valid value with one byte mutated
			b := []byte(valid)
			b[rng.Intn(len(b))] = alphabet[rng.Intn(len(alphabet))]
			input = string(b)
		case 2: // truncated valid value
			input = valid[:rng.Intn(len(valid))]
		case 3: // valid value with junk appended
			input = valid + string(alphabet[rng.Intn(len(alphabet))])
		}
		sc, ok := ParseTraceparent(input)
		if !ok {
			continue
		}
		// Anything accepted must be internally consistent.
		if !sc.Valid() {
			t.Fatalf("parser accepted %q but produced invalid context", input)
		}
		// Accepted inputs must round-trip through format; only the flags
		// byte may normalize (to 01).
		if reformatted := FormatTraceparent(sc); reformatted[:53] != input[:53] {
			t.Fatalf("accepted %q reformats to %q", input, reformatted)
		}
	}
	// Explicit rejects.
	for _, bad := range []string{
		"",
		"00",
		"00-" + strings.Repeat("0", 32) + "-" + strings.Repeat("1", 16) + "-01", // zero trace id
		"00-" + strings.Repeat("1", 32) + "-" + strings.Repeat("0", 16) + "-01", // zero span id
		"ff-" + strings.Repeat("1", 32) + "-" + strings.Repeat("1", 16) + "-01", // forbidden version
		"01-" + strings.Repeat("1", 32) + "-" + strings.Repeat("1", 16) + "-01", // unsupported version
		"00-" + strings.Repeat("G", 32) + "-" + strings.Repeat("1", 16) + "-01", // bad hex
		strings.Repeat("a", 54),
		strings.Repeat("a", 56),
	} {
		if _, ok := ParseTraceparent(bad); ok {
			t.Fatalf("parser accepted malformed %q", bad)
		}
	}
}

func TestSpanLifecycleAndNilSafety(t *testing.T) {
	// The full span API must be a no-op on nil spans (nil tracer).
	var nilTracer *Tracer
	s := nilTracer.StartRoot("x")
	if s != nil {
		t.Fatal("nil tracer returned non-nil span")
	}
	s.SetAttr("k", "v")
	s.AddEvent("e")
	s.SetError(errors.New("boom"))
	s.MarkError()
	if d := s.Finish(); d != 0 {
		t.Fatalf("nil span finish returned %v", d)
	}
	if s.TraceParent() != "" {
		t.Fatal("nil span produced a traceparent")
	}

	tr := New(Options{Service: "test"})
	root := tr.StartRoot("root")
	root.SetAttr("k", "v")
	child := tr.StartChild(root, "child")
	if child.Trace != root.Trace || child.Parent != root.ID {
		t.Fatal("child span not parented to root")
	}
	child.Finish()
	root.Finish()
	// Double finish keeps the first end time.
	end := root.End
	root.Finish()
	if !root.End.Equal(end) {
		t.Fatal("double finish moved End")
	}
	spans := tr.Spans(root.Trace)
	if len(spans) != 2 {
		t.Fatalf("retained %d spans, want 2", len(spans))
	}
}

func TestRingWraparoundBoundsMemory(t *testing.T) {
	tr := New(Options{RingSize: 32, ErrorKeep: 4, SlowestPerRoot: 2})
	for i := 0; i < 1000; i++ {
		tr.StartRoot(fmt.Sprintf("op-%d", i%4)).Finish()
	}
	if got := tr.SpanCount(); got != 1000 {
		t.Fatalf("span count %d, want 1000", got)
	}
	all := tr.all()
	// Ring (32) + up to 2 slowest for each of 4 names; error ring empty.
	if len(all) > 32+8 {
		t.Fatalf("retained %d spans, memory bound broken", len(all))
	}
}

func TestTailSamplingKeepsErrorsAndSlowest(t *testing.T) {
	tr := New(Options{RingSize: 8, ErrorKeep: 16, SlowestPerRoot: 2})

	// One early error span and one artificially slow span...
	errSpan := tr.StartRoot("query")
	errSpan.SetError(errors.New("boom"))
	errSpan.Finish()
	slow := tr.StartRoot("query")
	slow.Start = slow.Start.Add(-10 * time.Second) // fake a 10s duration
	slow.Finish()

	// ...then enough fast spans to churn the ring many times over.
	for i := 0; i < 200; i++ {
		tr.StartRoot("query").Finish()
	}

	var haveErr, haveSlow bool
	for _, s := range tr.all() {
		if s.ID == errSpan.ID {
			haveErr = true
		}
		if s.ID == slow.ID {
			haveSlow = true
		}
	}
	if !haveErr {
		t.Fatal("tail sampling dropped the error span")
	}
	if !haveSlow {
		t.Fatal("tail sampling dropped the slowest span")
	}
}

func TestConcurrentRecording(t *testing.T) {
	tr := New(Options{RingSize: 64})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				root := tr.StartRoot(fmt.Sprintf("g%d", g))
				tr.StartChild(root, "child").Finish()
				root.Finish()
			}
		}(g)
	}
	wg.Wait()
	if got := tr.SpanCount(); got != 8*500*2 {
		t.Fatalf("span count %d, want %d", got, 8*500*2)
	}
}

func TestTreeAssembly(t *testing.T) {
	tr := New(Options{Service: "test"})
	root := tr.StartRoot("job")
	c1 := tr.StartChild(root, "phase1")
	g1 := tr.StartChild(c1, "task")
	g1.Finish()
	c1.Finish()
	c2 := tr.StartChild(root, "phase2")
	c2.Finish()
	root.Finish()

	// A remote child of the same trace (parent span not retained here).
	orphan := tr.StartRemote("remote-op", SpanContext{TraceID: root.Trace, SpanID: NewSpanID()})
	orphan.Finish()

	tree := tr.Tree(root.Trace)
	if len(tree) != 2 { // root + unresolvable orphan
		t.Fatalf("got %d tree roots, want 2", len(tree))
	}
	var rootNode *SpanJSON
	for _, n := range tree {
		if n.Name == "job" {
			rootNode = n
		}
	}
	if rootNode == nil {
		t.Fatal("root span missing from tree")
	}
	if len(rootNode.Children) != 2 {
		t.Fatalf("root has %d children, want 2", len(rootNode.Children))
	}
	found := false
	for _, c := range rootNode.Children {
		if c.Name == "phase1" && len(c.Children) == 1 && c.Children[0].Name == "task" {
			found = true
		}
	}
	if !found {
		t.Fatal("grandchild not nested under phase1")
	}

	sums := tr.Summaries(0)
	if len(sums) != 1 {
		t.Fatalf("got %d summaries, want 1", len(sums))
	}
	if sums[0].Root != "job" || sums[0].Spans != 5 {
		t.Fatalf("bad summary %+v", sums[0])
	}
}

func TestFlightRecorder(t *testing.T) {
	dir := t.TempDir()
	tr := New(Options{Service: "test", FlightDir: dir, FlightLast: 8, FlightMinGap: time.Hour})
	for i := 0; i < 20; i++ {
		s := tr.StartRoot("op")
		s.AddEvent("tick")
		s.Finish()
	}
	path, err := tr.RecordFlight("degraded: journal died")
	if err != nil {
		t.Fatal(err)
	}
	if path == "" {
		t.Fatal("no dump written")
	}
	if !strings.Contains(filepath.Base(path), "degraded--journal-died") {
		t.Fatalf("reason not sanitized into filename: %s", path)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var dump FlightDump
	if err := json.Unmarshal(data, &dump); err != nil {
		t.Fatalf("dump is not valid JSON: %v", err)
	}
	if dump.Reason != "degraded: journal died" || dump.Service != "test" {
		t.Fatalf("bad dump header: %+v", dump)
	}
	if len(dump.Spans) != 8 {
		t.Fatalf("dump has %d spans, want FlightLast=8", len(dump.Spans))
	}

	// Rate limit: same reason within the gap writes nothing.
	path2, err := tr.RecordFlight("degraded: journal died")
	if err != nil || path2 != "" {
		t.Fatalf("rate limit failed: path=%q err=%v", path2, err)
	}
	// Different reason still dumps.
	path3, err := tr.RecordFlight("watchdog")
	if err != nil || path3 == "" {
		t.Fatalf("second reason blocked: path=%q err=%v", path3, err)
	}
	if got := tr.FlightDumps(); got != 2 {
		t.Fatalf("dump count %d, want 2", got)
	}

	// Disabled and nil tracers are silent no-ops.
	if p, err := New(Options{}).RecordFlight("x"); p != "" || err != nil {
		t.Fatalf("disabled recorder dumped: %q %v", p, err)
	}
	var nilTracer *Tracer
	if p, err := nilTracer.RecordFlight("x"); p != "" || err != nil {
		t.Fatalf("nil recorder dumped: %q %v", p, err)
	}
}
