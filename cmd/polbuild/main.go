// Command polbuild runs the Patterns-of-Life pipeline over an AIS archive
// and writes the global inventory file (the paper's methodology, Figure 3).
//
// Usage:
//
//	polbuild -in fleet.nmea -res 6 -out fleet.polinv
//	polbuild -synthetic -vessels 100 -days 30 -res 7 -out synth.polinv
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"

	"github.com/patternsoflife/pol/internal/dataflow"
	"github.com/patternsoflife/pol/internal/feed"
	"github.com/patternsoflife/pol/internal/inventory"
	"github.com/patternsoflife/pol/internal/model"
	"github.com/patternsoflife/pol/internal/pipeline"
	"github.com/patternsoflife/pol/internal/ports"
	"github.com/patternsoflife/pol/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("polbuild: ")

	var (
		in        = flag.String("in", "", "input timestamped-NMEA archive (from polgen or a provider)")
		synthetic = flag.Bool("synthetic", false, "generate the dataset in-process instead of reading -in")
		vessels   = flag.Int("vessels", 100, "synthetic fleet size")
		days      = flag.Int("days", 30, "synthetic days")
		seed      = flag.Int64("seed", 1, "synthetic seed")
		res       = flag.Int("res", 6, "hexgrid resolution of the inventory (paper: 6 or 7)")
		out       = flag.String("out", "inventory.polinv", "output inventory file")
		par       = flag.Int("parallelism", runtime.GOMAXPROCS(0), "worker pool width")
		verbose   = flag.Bool("v", false, "print stage metrics")
	)
	flag.Parse()

	gaz := ports.Default()
	portIdx := ports.NewIndex(gaz, ports.IndexResolution)
	ctx := dataflow.NewContext(*par)

	var records *dataflow.Dataset[model.PositionRecord]
	var static map[uint32]model.VesselInfo
	desc := ""

	switch {
	case *synthetic:
		s, err := sim.New(sim.Config{Vessels: *vessels, Days: *days, Seed: *seed}, gaz)
		if err != nil {
			log.Fatal(err)
		}
		static = s.Fleet().StaticIndex()
		n := len(s.Fleet().Vessels)
		records = dataflow.Generate(ctx, n, func(part int) []model.PositionRecord {
			recs, _ := s.VesselTrack(part)
			return recs
		})
		desc = "synthetic: " + s.Config().Describe()
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		r := feed.NewReader(f)
		all, err := r.ReadAll()
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		st := r.Stats()
		log.Printf("ingest: %d lines, %d positions, %d statics, %d bad lines, %d bad NMEA",
			st.Lines, st.Positions, st.Statics, st.BadLines, st.BadNMEA)
		static = r.StaticsAsVesselInfo()
		records = dataflow.Parallelize(ctx, all, *par*4)
		desc = "archive: " + *in
	default:
		log.Fatal("need -in FILE or -synthetic (see -h)")
	}

	result, err := pipeline.Run(records, static, portIdx, pipeline.Options{
		Resolution:  *res,
		Description: desc,
	})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("pipeline: %s", result.Stats)
	inv := result.Inventory
	for _, gs := range inventory.AllGroupSets {
		log.Printf("groups %v: %d (compression %.4f%%)",
			gs, inv.CountGroups(gs), inv.Compression(gs)*100)
	}
	log.Printf("cells: %d (global H3 utilization %.6f%%)",
		len(inv.Cells(inventory.GSCell)), inv.Utilization()*100)
	if *verbose {
		fmt.Fprint(os.Stderr, ctx.Metrics().String())
	}
	if err := inventory.WriteFile(inv, *out); err != nil {
		log.Fatal(err)
	}
	fi, _ := os.Stat(*out)
	log.Printf("wrote %s (%d groups, %.1f MiB)", *out, inv.Len(), float64(fi.Size())/(1<<20))
}
