# Standard checks for this repository. `make check` is what CI should run.

GO ?= go

.PHONY: check build test vet fmt race benchsmoke bench e2e

check: fmt vet build test race benchsmoke e2e

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Short race pass over the packages with real concurrency: the distributed
# build cluster, the dataflow engine, the live ingestion engine, the
# snapshot-serving inventory, the observability middleware and the stream
# monitor.
race:
	$(GO) test -race -count=1 -timeout 20m ./internal/cluster/ ./internal/dataflow/ ./internal/ingest/ ./internal/inventory/ ./internal/obs/ ./internal/replica/ ./internal/segment/ ./internal/stream/

# One-iteration smokes: the snapshot-publish benchmark and the columnar
# segment write/open/lookup round trip — they catch serving-path
# regressions that compile but break at run time, without benchmark noise.
benchsmoke:
	$(GO) test -run='^$$' -bench=Publish -benchtime=1x ./internal/inventory/
	$(GO) test -run='^$$' -bench=Segment -benchtime=1x ./internal/segment/

# End-to-end smokes: the loopback cluster (coordinator + two workers, one
# killed mid-task), the durability chaos drill (crash mid-checkpoint
# rename, permanently failing journal disk, recovery convergence), the
# replicated-serving drill (primary + two read replicas, one killed and
# re-bootstrapped mid-feed, bit-exact convergence), and the failover drill
# (primary killed mid-feed, replica promoted with epoch fencing, stale
# primary fenced on restart).
e2e:
	./scripts/cluster_e2e.sh
	./scripts/chaos_e2e.sh
	./scripts/replica_e2e.sh
	./scripts/failover_e2e.sh

# Full benchmark suite: regenerates BENCH_PR10.json and prints the headline
# publish/shuffle/distributed benchmarks (see scripts/bench.sh).
bench:
	./scripts/bench.sh
