package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAngularHistogramBinning(t *testing.T) {
	h := NewAngularHistogram(DefaultAngularBins)
	if h.BinWidth() != 30 {
		t.Fatalf("bin width %v, want 30", h.BinWidth())
	}
	h.Add(0)     // bin 0
	h.Add(29.99) // bin 0
	h.Add(30)    // bin 1
	h.Add(359.9) // bin 11
	h.Add(360)   // wraps to bin 0
	h.Add(-15)   // wraps to 345 → bin 11
	h.Add(720.5) // wraps to 0.5 → bin 0
	bins := h.Bins()
	if bins[0] != 4 {
		t.Errorf("bin 0 = %d, want 4", bins[0])
	}
	if bins[1] != 1 {
		t.Errorf("bin 1 = %d, want 1", bins[1])
	}
	if bins[11] != 2 {
		t.Errorf("bin 11 = %d, want 2", bins[11])
	}
	if h.Total() != 7 {
		t.Errorf("total %d, want 7", h.Total())
	}
}

func TestAngularHistogramIgnoresNaN(t *testing.T) {
	h := NewAngularHistogram(12)
	h.Add(math.NaN())
	h.AddWeighted(10, 0)
	if h.Total() != 0 {
		t.Error("NaN and zero weight must be ignored")
	}
}

func TestAngularHistogramMode(t *testing.T) {
	h := NewAngularHistogram(12)
	for i := 0; i < 10; i++ {
		h.Add(95) // bin 3 (90-120)
	}
	h.Add(10)
	idx, count := h.ModeBin()
	if idx != 3 || count != 10 {
		t.Errorf("mode bin %d count %d, want 3/10", idx, count)
	}
	if got := h.ModeAngle(); got != 105 {
		t.Errorf("mode angle %v, want 105 (center of bin 3)", got)
	}
	empty := NewAngularHistogram(12)
	if idx, count := empty.ModeBin(); idx != 0 || count != 0 {
		t.Error("empty histogram mode must be (0,0)")
	}
}

func TestAngularHistogramMerge(t *testing.T) {
	a := NewAngularHistogram(12)
	b := NewAngularHistogram(12)
	a.AddWeighted(45, 3)
	b.AddWeighted(45, 2)
	b.AddWeighted(200, 7)
	a.Merge(b)
	if a.Bins()[1] != 5 {
		t.Errorf("merged bin 1 = %d, want 5", a.Bins()[1])
	}
	if a.Bins()[6] != 7 {
		t.Errorf("merged bin 6 = %d, want 7", a.Bins()[6])
	}
	mismatched := NewAngularHistogram(6)
	a.Merge(mismatched) // ignored
	a.Merge(nil)        // ignored
	if a.Total() != 12 {
		t.Error("mismatched/nil merges must be no-ops")
	}
}

func TestAngularHistogramBinsClamp(t *testing.T) {
	h := NewAngularHistogram(0)
	h.Add(123)
	if len(h.Bins()) != 1 || h.Bins()[0] != 1 {
		t.Error("bin count clamps to 1")
	}
}

func TestAngularHistogramBinaryRoundTrip(t *testing.T) {
	h := NewAngularHistogram(12)
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 1000; i++ {
		h.Add(rng.Float64() * 360)
	}
	buf := h.AppendBinary(nil)
	got, rest, err := DecodeAngularHistogram(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Errorf("%d trailing bytes", len(rest))
	}
	want := h.Bins()
	have := got.Bins()
	for i := range want {
		if want[i] != have[i] {
			t.Errorf("bin %d: %d vs %d", i, have[i], want[i])
		}
	}
	if _, _, err := DecodeAngularHistogram(buf[:6]); err == nil {
		t.Error("truncated input must fail")
	}
}

func TestCircularMeanWrapAround(t *testing.T) {
	// The arithmetic mean of 359° and 1° is 180°; the circular mean must be 0°.
	var c CircularMean
	c.Add(359)
	c.Add(1)
	got := c.Mean()
	if math.Min(got, 360-got) > 1e-9 {
		t.Errorf("circular mean of 359° and 1° = %v, want 0", got)
	}
}

func TestCircularMeanSimple(t *testing.T) {
	var c CircularMean
	c.Add(80)
	c.Add(100)
	if math.Abs(c.Mean()-90) > 1e-9 {
		t.Errorf("mean %v, want 90", c.Mean())
	}
	if math.Abs(c.Resultant()-math.Cos(10*math.Pi/180)) > 1e-9 {
		t.Errorf("resultant %v", c.Resultant())
	}
}

func TestCircularMeanEmpty(t *testing.T) {
	var c CircularMean
	if !math.IsNaN(c.Mean()) {
		t.Error("empty mean must be NaN")
	}
	if c.Resultant() != 0 {
		t.Error("empty resultant must be 0")
	}
}

func TestCircularMeanOpposed(t *testing.T) {
	var c CircularMean
	c.Add(0)
	c.Add(180)
	if !math.IsNaN(c.Mean()) {
		t.Errorf("perfectly opposed angles have no mean direction, got %v", c.Mean())
	}
	if c.Resultant() > 1e-9 {
		t.Errorf("opposed resultant %v, want 0", c.Resultant())
	}
}

func TestCircularMeanConcentration(t *testing.T) {
	var tight, spread CircularMean
	rng := rand.New(rand.NewSource(18))
	for i := 0; i < 1000; i++ {
		tight.Add(45 + rng.NormFloat64()*2)
		spread.Add(rng.Float64() * 360)
	}
	if tight.Resultant() < 0.99 {
		t.Errorf("tight resultant %v, want ≈ 1", tight.Resultant())
	}
	if spread.Resultant() > 0.1 {
		t.Errorf("uniform resultant %v, want ≈ 0", spread.Resultant())
	}
	if math.Abs(tight.Mean()-45) > 1 {
		t.Errorf("tight mean %v, want ≈ 45", tight.Mean())
	}
}

func TestCircularMeanMergeEqualsSequential(t *testing.T) {
	f := func(angles []float64, split uint8) bool {
		if len(angles) < 2 {
			return true
		}
		for i, a := range angles {
			angles[i] = math.Mod(math.Abs(a), 360)
		}
		k := int(split) % len(angles)
		var whole, left, right CircularMean
		for _, a := range angles {
			whole.Add(a)
		}
		for _, a := range angles[:k] {
			left.Add(a)
		}
		for _, a := range angles[k:] {
			right.Add(a)
		}
		left.Merge(&right)
		wm, lm := whole.Mean(), left.Mean()
		if math.IsNaN(wm) != math.IsNaN(lm) {
			return false
		}
		if math.IsNaN(wm) {
			return true
		}
		d := math.Abs(wm - lm)
		if d > 180 {
			d = 360 - d
		}
		return d < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCircularMeanBinaryRoundTrip(t *testing.T) {
	var c CircularMean
	c.Add(10)
	c.Add(350)
	c.AddWeighted(20, 3)
	buf := c.AppendBinary(nil)
	got, rest, err := DecodeCircularMean(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 || got != c {
		t.Errorf("round trip mismatch")
	}
	if _, _, err := DecodeCircularMean(buf[:8]); err == nil {
		t.Error("truncated input must fail")
	}
}

func BenchmarkAngularHistogramAdd(b *testing.B) {
	h := NewAngularHistogram(12)
	for i := 0; i < b.N; i++ {
		h.Add(float64(i % 360))
	}
}

func BenchmarkCircularMeanAdd(b *testing.B) {
	var c CircularMean
	for i := 0; i < b.N; i++ {
		c.Add(float64(i % 360))
	}
}
