package trace

import "sync/atomic"

// spanRing is a fixed-capacity lock-free ring of finished spans: writers
// claim a slot with one atomic add and publish the (immutable) span with
// one atomic pointer store, so recording never blocks the request path.
// Readers snapshot whatever is currently published; a reader racing a
// writer sees either the old or the new span in a slot, both valid.
type spanRing struct {
	slots []atomic.Pointer[Span]
	next  atomic.Uint64
}

func newSpanRing(size int) *spanRing {
	if size < 1 {
		size = 1
	}
	return &spanRing{slots: make([]atomic.Pointer[Span], size)}
}

func (r *spanRing) add(s *Span) {
	i := r.next.Add(1) - 1
	r.slots[i%uint64(len(r.slots))].Store(s)
}

// snapshot returns the currently published spans, oldest first (best
// effort under concurrent writes).
func (r *spanRing) snapshot() []*Span {
	n := r.next.Load()
	size := uint64(len(r.slots))
	start := uint64(0)
	if n > size {
		start = n - size
	}
	out := make([]*Span, 0, size)
	for i := start; i < n; i++ {
		if s := r.slots[i%size].Load(); s != nil {
			out = append(out, s)
		}
	}
	return out
}
