// Package sim generates a synthetic global AIS dataset — the substitute for
// the proprietary MarineTraffic/Kpler archive the paper processes (Table 1).
//
// The simulator builds a fleet of commercial vessels, schedules consecutive
// voyages between gazetteer ports (weighted by port size), sails each voyage
// along the global shipping-lane graph with a per-segment kinematic profile
// (harbour maneuvering, open-sea service speed, port dwell), and emits AIS
// positional reports on a class-A-like reporting schedule with satellite
// reception dropout. Optional noise injection produces the out-of-range and
// physically infeasible records the paper's cleaning stage (§3.3.1) must
// remove.
//
// Everything is deterministic given Config.Seed.
package sim

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"github.com/patternsoflife/pol/internal/ais"
	"github.com/patternsoflife/pol/internal/geo"
	"github.com/patternsoflife/pol/internal/model"
	"github.com/patternsoflife/pol/internal/ports"
	"github.com/patternsoflife/pol/internal/weather"
)

// Config parameterizes a simulation run.
type Config struct {
	Vessels int       // fleet size (default 100)
	Start   time.Time // simulation start (default 2022-01-01 UTC)
	Days    int       // simulated duration (default 30)
	Seed    int64     // determinism seed

	// ReportInterval is the mean seconds between received AIS reports for a
	// vessel under way (default 180 — a satellite-reception-scale rate; the
	// raw class-A rate of 2-10 s would generate the paper's billions of rows).
	ReportInterval float64
	// MooredInterval is the mean seconds between reports at berth (default
	// 1080, 3× the class-A 6-minute anchor rate).
	MooredInterval float64
	// DropoutRate is the fraction of reports lost to reception gaps
	// (default 0.15).
	DropoutRate float64
	// NoiseRate is the fraction of received reports corrupted with
	// protocol-violating or physically infeasible values (default 0 — enable
	// for cleaning tests; the paper's raw feed contains such records).
	NoiseRate float64

	// BlockSuez closes the Suez canal between the given simulation days
	// (inclusive start, exclusive end), forcing Cape of Good Hope
	// re-routing — the paper's 2021 Ever Given motivation. Zero values mean
	// no blockage.
	BlockSuezFromDay, BlockSuezToDay int

	// Weather, when non-nil, applies involuntary speed loss from the
	// synthetic met-ocean field while sailing (the paper's §5 weather
	// enrichment). Nil means calm water everywhere.
	Weather *weather.Field
}

// WithDefaults returns the configuration with unset fields filled exactly
// as New would fill them — callers that partition a fleet (the distributed
// build coordinator) resolve the effective vessel count through it before
// splitting index ranges.
func (c Config) WithDefaults() Config { return c.withDefaults() }

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Vessels <= 0 {
		c.Vessels = 100
	}
	if c.Start.IsZero() {
		c.Start = time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC)
	}
	if c.Days <= 0 {
		c.Days = 30
	}
	if c.ReportInterval <= 0 {
		c.ReportInterval = 180
	}
	if c.MooredInterval <= 0 {
		c.MooredInterval = 1080
	}
	if c.DropoutRate < 0 || c.DropoutRate >= 1 {
		c.DropoutRate = 0.15
	}
	return c
}

// Voyage is one scheduled port-to-port trip of a vessel, kept for ground
// truth in evaluation (ETA error, destination-prediction accuracy).
type Voyage struct {
	MMSI       uint32
	VType      model.VesselType
	Route      Route
	DepartTime int64 // Unix seconds: leaving the origin berth
	ArriveTime int64 // Unix seconds: arriving at the destination berth
}

// Simulator generates the synthetic dataset.
type Simulator struct {
	cfg   Config
	fleet *Fleet
	gaz   *ports.Gazetteer
	graph *LaneGraph
}

// New creates a simulator over the given gazetteer. Pass ports.Default()
// for the world fleet.
func New(cfg Config, gaz *ports.Gazetteer) (*Simulator, error) {
	cfg = cfg.withDefaults()
	graph, err := NewLaneGraph(gaz)
	if err != nil {
		return nil, err
	}
	return &Simulator{
		cfg:   cfg,
		fleet: NewFleet(cfg.Vessels, cfg.Seed),
		gaz:   gaz,
		graph: graph,
	}, nil
}

// Fleet returns the simulated fleet (the vessel static inventory).
func (s *Simulator) Fleet() *Fleet { return s.fleet }

// Gazetteer returns the port gazetteer in use.
func (s *Simulator) Gazetteer() *ports.Gazetteer { return s.gaz }

// Graph returns the shipping-lane graph.
func (s *Simulator) Graph() *LaneGraph { return s.graph }

// Config returns the effective configuration (defaults applied).
func (s *Simulator) Config() Config { return s.cfg }

// VesselTrack generates the full report stream and voyage ground truth of
// one vessel (by fleet index). Tracks of different vessels are independent
// and deterministic, so they can be generated in parallel as dataset
// partitions.
func (s *Simulator) VesselTrack(idx int) ([]model.PositionRecord, []Voyage) {
	if idx < 0 || idx >= len(s.fleet.Vessels) {
		return nil, nil
	}
	v := s.fleet.Vessels[idx]
	rng := rand.New(rand.NewSource(s.cfg.Seed ^ int64(v.MMSI)*0x9e3779b9))

	start := s.cfg.Start.Unix()
	end := start + int64(s.cfg.Days)*86400

	var recs []model.PositionRecord
	var voyages []Voyage

	here := s.pickPort(rng, model.NoPort)
	// Stagger initial departures over the first two days.
	now := start + int64(rng.Float64()*2*86400)
	s.emitDwell(rng, v, here, start, now, &recs)

	for now < end {
		dest := s.pickPort(rng, here)
		route, err := s.planVoyage(here, dest, now)
		if err != nil {
			// Unroutable pair (should not happen on the connected graph);
			// try another destination next iteration.
			here = dest
			continue
		}
		depart := now
		arrive := s.sail(rng, v, route, depart, end, &recs)
		voyages = append(voyages, Voyage{
			MMSI: v.MMSI, VType: v.Type, Route: route,
			DepartTime: depart, ArriveTime: arrive,
		})
		if arrive >= end {
			break
		}
		// Dwell at the destination berth 8h-3d.
		dwellEnd := arrive + int64(8*3600+rng.Float64()*64*3600)
		if dwellEnd > end {
			dwellEnd = end
		}
		s.emitDwell(rng, v, dest, arrive, dwellEnd, &recs)
		here = dest
		now = dwellEnd
	}
	return recs, voyages
}

// planVoyage plans a route honouring any active canal blockage at departure
// time.
func (s *Simulator) planVoyage(origin, dest model.PortID, departUnix int64) (Route, error) {
	var blocked []Canal
	if s.cfg.BlockSuezToDay > s.cfg.BlockSuezFromDay {
		day := int((departUnix - s.cfg.Start.Unix()) / 86400)
		if day >= s.cfg.BlockSuezFromDay && day < s.cfg.BlockSuezToDay {
			blocked = append(blocked, SuezCanal)
		}
	}
	return s.graph.Plan(origin, dest, blocked...)
}

// pickPort selects a port weighted by size class, excluding the given one.
// Passenger-style repeat calls emerge naturally from the weighting.
func (s *Simulator) pickPort(rng *rand.Rand, exclude model.PortID) model.PortID {
	all := s.gaz.All()
	var total float64
	for _, p := range all {
		if p.ID != exclude {
			total += p.Size.Weight()
		}
	}
	r := rng.Float64() * total
	for _, p := range all {
		if p.ID == exclude {
			continue
		}
		r -= p.Size.Weight()
		if r <= 0 {
			return p.ID
		}
	}
	return all[len(all)-1].ID
}

// harbourRadiusM is the distance from a port center within which vessels
// maneuver at reduced speed.
const harbourRadiusM = 22000

// sail integrates the vessel along the route from departTime, appending
// received reports, and returns the arrival time (clamped to endUnix).
func (s *Simulator) sail(rng *rand.Rand, v model.VesselInfo, route Route, departUnix, endUnix int64, out *[]model.PositionRecord) int64 {
	origin, _ := s.gaz.ByID(route.Origin)
	dest, _ := s.gaz.ByID(route.Dest)

	dist := 0.0
	now := float64(departUnix)
	nextReport := now
	for dist < route.DistM && int64(now) < endUnix {
		pos := route.PointAtDistance(dist)
		// Speed profile: maneuvering near harbours, service speed at sea,
		// with mild stochastic variation and, when enabled, involuntary
		// speed loss from the synthetic weather field.
		speed := v.DesignSpeed * (0.92 + 0.16*rng.Float64())
		if s.cfg.Weather != nil {
			speed *= s.cfg.Weather.At(pos, int64(now)).SpeedFactor()
		}
		dOrigin := geo.Haversine(pos, origin.Pos)
		dDest := geo.Haversine(pos, dest.Pos)
		if m := math.Min(dOrigin, dDest); m < harbourRadiusM {
			// Ramp from ~6 knots at the berth to service speed at the edge.
			f := 0.3 + 0.7*(m/harbourRadiusM)
			speed *= f
			if speed < 5 {
				speed = 5
			}
		}
		mps := speed * geo.MetersPerNauticalMile / 3600

		if now >= nextReport {
			cog := route.BearingAtDistance(dist)
			rec := model.PositionRecord{
				MMSI:    v.MMSI,
				Time:    int64(now),
				Pos:     pos,
				SOG:     speed,
				COG:     cog,
				Heading: math.Round(geo.NormalizeAngle(cog + rng.NormFloat64()*2)),
				Status:  ais.StatusUnderWayEngine,
			}
			s.deliver(rng, rec, out)
			// Next report after an exponential interval.
			nextReport = now + s.cfg.ReportInterval*(0.3+rng.ExpFloat64())
		}

		// Integrate position with a time step bounded by the report
		// cadence for smooth tracks.
		step := math.Min(60, s.cfg.ReportInterval/3)
		dist += mps * step
		now += step
	}
	arrive := int64(now)
	if arrive > endUnix {
		arrive = endUnix
	}
	return arrive
}

// emitDwell emits berth reports (moored status, ~0 speed) between from and
// to at the moored cadence.
func (s *Simulator) emitDwell(rng *rand.Rand, v model.VesselInfo, portID model.PortID, fromUnix, toUnix int64, out *[]model.PositionRecord) {
	port, ok := s.gaz.ByID(portID)
	if !ok {
		return
	}
	// A stable berth spot inside the fence, per vessel per call.
	berth := geo.Destination(port.Pos, rng.Float64()*360, rng.Float64()*port.FenceRadiusM()*0.4)
	hdg := math.Floor(rng.Float64() * 360)
	for t := float64(fromUnix); t < float64(toUnix); t += s.cfg.MooredInterval * (0.5 + rng.ExpFloat64()) {
		rec := model.PositionRecord{
			MMSI:    v.MMSI,
			Time:    int64(t),
			Pos:     geo.Destination(berth, rng.Float64()*360, rng.Float64()*30),
			SOG:     rng.Float64() * 0.3,
			COG:     rng.Float64() * 360,
			Heading: hdg,
			Status:  ais.StatusMoored,
		}
		s.deliver(rng, rec, out)
	}
}

// deliver applies reception dropout and optional noise corruption, then
// appends the report.
func (s *Simulator) deliver(rng *rand.Rand, rec model.PositionRecord, out *[]model.PositionRecord) {
	if rng.Float64() < s.cfg.DropoutRate {
		return
	}
	if s.cfg.NoiseRate > 0 && rng.Float64() < s.cfg.NoiseRate {
		rec = corrupt(rng, rec)
	}
	*out = append(*out, rec)
}

// corrupt injects one of the defect classes the paper's cleaning stage
// filters: out-of-range coordinates, illegal speed/course/heading values,
// and teleporting position jumps.
func corrupt(rng *rand.Rand, rec model.PositionRecord) model.PositionRecord {
	switch rng.Intn(5) {
	case 0: // out-of-range latitude (the AIS 91° "not available" style)
		rec.Pos.Lat = 91
	case 1: // out-of-range longitude
		rec.Pos.Lng = 181
	case 2: // illegal speed
		rec.SOG = 102.3 + rng.Float64()*20
	case 3: // illegal course
		rec.COG = 360 + rng.Float64()*40
	default: // teleport: a position jump implying > 50 knots
		rec.Pos = geo.Destination(rec.Pos, rng.Float64()*360, 300e3+rng.Float64()*2000e3)
	}
	return rec
}

// GenerateAll materializes every vessel's track sequentially. Prefer
// feeding VesselTrack into dataflow.Generate for parallel pipelines; this
// helper serves tests and small tools.
func (s *Simulator) GenerateAll() ([]model.PositionRecord, []Voyage) {
	var recs []model.PositionRecord
	var voys []Voyage
	for i := range s.fleet.Vessels {
		r, v := s.VesselTrack(i)
		recs = append(recs, r...)
		voys = append(voys, v...)
	}
	return recs, voys
}

// NMEA encodes a position record as AIVDM sentences, for the polgen tool
// and end-to-end protocol tests.
func NMEA(rec model.PositionRecord) ([]string, error) {
	return ais.EncodePosition(ais.PositionReport{
		Type:      ais.TypePositionA1,
		MMSI:      rec.MMSI,
		Status:    rec.Status,
		Lon:       rec.Pos.Lng,
		Lat:       rec.Pos.Lat,
		SOG:       rec.SOG,
		COG:       rec.COG,
		Heading:   rec.Heading,
		Timestamp: int(rec.Time % 60),
	})
}

// StaticNMEA encodes a vessel's static report as AIVDM sentences.
func StaticNMEA(v model.VesselInfo, seq int) ([]string, error) {
	return ais.EncodeStatic(ais.StaticReport{
		MMSI:     v.MMSI,
		IMO:      v.IMO,
		CallSign: v.CallSign,
		Name:     v.Name,
		ShipType: v.Type.AISShipType(),
		DimBow:   v.LengthM / 2,
		DimStern: v.LengthM - v.LengthM/2,
		DimPort:  v.BeamM / 2,
		DimStarb: v.BeamM - v.BeamM/2,
		Draught:  float64(v.GRT) / 12000,
	}, seq)
}

// Describe returns a one-line human summary of the configuration.
func (c Config) Describe() string {
	return fmt.Sprintf("%d vessels × %d days from %s (seed %d)",
		c.Vessels, c.Days, c.Start.Format("2006-01-02"), c.Seed)
}
