package geo

import "math"

// Polygon is a simple closed ring of geographic vertices. The ring is
// implicitly closed: the last vertex connects back to the first. Vertex order
// may be clockwise or counter-clockwise. Polygons are assumed to be small
// enough (port geofences, regional areas) that planar containment in
// longitude/latitude space is accurate; rings must not cross the
// antimeridian unless constructed via CirclePolygon, which normalizes them.
type Polygon []LatLng

// Contains reports whether p lies inside the polygon using the even-odd
// (ray-casting) rule in lat/lng space. Points exactly on an edge may be
// classified either way.
func (poly Polygon) Contains(p LatLng) bool {
	n := len(poly)
	if n < 3 {
		return false
	}
	inside := false
	j := n - 1
	for i := 0; i < n; i++ {
		yi, xi := poly[i].Lat, poly[i].Lng
		yj, xj := poly[j].Lat, poly[j].Lng
		if (yi > p.Lat) != (yj > p.Lat) &&
			p.Lng < (xj-xi)*(p.Lat-yi)/(yj-yi)+xi {
			inside = !inside
		}
		j = i
	}
	return inside
}

// BoundingBox returns the axis-aligned bounds of the polygon. It returns the
// zero box for an empty polygon.
func (poly Polygon) BoundingBox() BBox {
	if len(poly) == 0 {
		return BBox{}
	}
	b := BBox{MinLat: 90, MaxLat: -90, MinLng: 180, MaxLng: -180}
	for _, v := range poly {
		b.MinLat = math.Min(b.MinLat, v.Lat)
		b.MaxLat = math.Max(b.MaxLat, v.Lat)
		b.MinLng = math.Min(b.MinLng, v.Lng)
		b.MaxLng = math.Max(b.MaxLng, v.Lng)
	}
	return b
}

// Centroid returns the arithmetic mean of the polygon vertices — adequate
// for the small convex geofences used in this system.
func (poly Polygon) Centroid() LatLng {
	if len(poly) == 0 {
		return LatLng{}
	}
	var lat, lng float64
	for _, v := range poly {
		lat += v.Lat
		lng += v.Lng
	}
	n := float64(len(poly))
	return LatLng{Lat: lat / n, Lng: lng / n}
}

// CirclePolygon approximates a geodesic circle of the given radius (metres)
// around center with segments vertices. At least 3 segments are used.
func CirclePolygon(center LatLng, radiusM float64, segments int) Polygon {
	if segments < 3 {
		segments = 3
	}
	poly := make(Polygon, segments)
	for i := 0; i < segments; i++ {
		bearing := float64(i) / float64(segments) * 360
		poly[i] = Destination(center, bearing, radiusM)
	}
	return poly
}

// SegmentsIntersect reports whether the closed segments a1-a2 and b1-b2
// intersect, treating coordinates as planar (adequate for the regional
// scales it is used at; segments must not span the antimeridian).
func SegmentsIntersect(a1, a2, b1, b2 LatLng) bool {
	d := func(p, q, r LatLng) float64 {
		return (q.Lng-p.Lng)*(r.Lat-p.Lat) - (q.Lat-p.Lat)*(r.Lng-p.Lng)
	}
	onSeg := func(p, q, r LatLng) bool {
		return math.Min(p.Lng, q.Lng) <= r.Lng && r.Lng <= math.Max(p.Lng, q.Lng) &&
			math.Min(p.Lat, q.Lat) <= r.Lat && r.Lat <= math.Max(p.Lat, q.Lat)
	}
	d1 := d(b1, b2, a1)
	d2 := d(b1, b2, a2)
	d3 := d(a1, a2, b1)
	d4 := d(a1, a2, b2)
	if ((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
		((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0)) {
		return true
	}
	switch {
	case d1 == 0 && onSeg(b1, b2, a1):
		return true
	case d2 == 0 && onSeg(b1, b2, a2):
		return true
	case d3 == 0 && onSeg(a1, a2, b1):
		return true
	case d4 == 0 && onSeg(a1, a2, b2):
		return true
	}
	return false
}

// BBox is an axis-aligned geographic bounding box. Boxes never span the
// antimeridian: MinLng <= MaxLng.
type BBox struct {
	MinLat, MinLng, MaxLat, MaxLng float64
}

// Contains reports whether p lies inside the box (inclusive).
func (b BBox) Contains(p LatLng) bool {
	return p.Lat >= b.MinLat && p.Lat <= b.MaxLat &&
		p.Lng >= b.MinLng && p.Lng <= b.MaxLng
}

// Center returns the midpoint of the box.
func (b BBox) Center() LatLng {
	return LatLng{Lat: (b.MinLat + b.MaxLat) / 2, Lng: (b.MinLng + b.MaxLng) / 2}
}

// Expand returns the box grown by marginDeg degrees on every side, clamped
// to the legal geographic range.
func (b BBox) Expand(marginDeg float64) BBox {
	return BBox{
		MinLat: clamp(b.MinLat-marginDeg, -90, 90),
		MaxLat: clamp(b.MaxLat+marginDeg, -90, 90),
		MinLng: clamp(b.MinLng-marginDeg, -180, 180),
		MaxLng: clamp(b.MaxLng+marginDeg, -180, 180),
	}
}
