// Monitor example: the online deployment the paper sketches in §4.1.3,
// end to end. A live ingestion engine accepts a simulated fleet's AIS
// feed over a real TCP connection (timestamped NMEA, the provider wire
// format), builds the inventory continuously, and serves it over HTTP
// while ingesting. The example polls the daemon's stats endpoint like an
// operations dashboard would, then runs the stream monitor against the
// live inventory to emit operational events: port departures and
// arrivals, changes of the most probable destination, anomaly alerts.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"sort"
	"time"

	"github.com/patternsoflife/pol/internal/api"
	"github.com/patternsoflife/pol/internal/feed"
	"github.com/patternsoflife/pol/internal/ingest"
	"github.com/patternsoflife/pol/internal/model"
	"github.com/patternsoflife/pol/internal/ports"
	"github.com/patternsoflife/pol/internal/sim"
	"github.com/patternsoflife/pol/internal/stream"
)

func main() {
	log.SetFlags(0)

	gaz := ports.Default()
	portIdx := ports.NewIndex(gaz, ports.IndexResolution)
	fleet, err := sim.New(sim.Config{Vessels: 30, Days: 21, Seed: 19}, gaz)
	if err != nil {
		log.Fatal(err)
	}
	tracks := make([][]model.PositionRecord, 30)
	var live []model.PositionRecord
	for i := range tracks {
		tracks[i], _ = fleet.VesselTrack(i)
		live = append(live, tracks[i]...)
	}
	sort.SliceStable(live, func(i, j int) bool { return live[i].Time < live[j].Time })

	// The live daemon, in-process: engine + TCP feed listener + HTTP API
	// with the ingestion stats endpoint — exactly what polingest runs.
	eng, err := ingest.NewEngine(ingest.Options{Resolution: 6, MergeEvery: 100 * time.Millisecond})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()
	feedLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	feedSrv := ingest.NewServer(eng, feedLn, ingest.ServerOptions{})
	defer feedSrv.Close()

	mux := http.NewServeMux()
	mux.Handle("/", api.NewLiveServer(eng, gaz).Handler())
	mux.Handle("GET /v1/ingest/stats", eng.StatsHandler())
	httpLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() { _ = http.Serve(httpLn, mux) }()
	baseURL := "http://" + httpLn.Addr().String()
	fmt.Printf("live daemon: feeds on %s, API on %s\n\n", feedLn.Addr(), baseURL)

	// Stream the fleet's history over TCP as a provider feed would deliver
	// it: statics first, then positions in receive-time order.
	conn, err := net.Dial("tcp", feedLn.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	w := feed.NewWriter(conn)
	for _, v := range fleet.Fleet().Vessels {
		if err := w.WriteStatic(v, live[0].Time); err != nil {
			log.Fatal(err)
		}
	}
	for _, rec := range live {
		if err := w.WritePosition(rec); err != nil {
			log.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	conn.Close()

	// Watch the daemon ingest through its stats endpoint, the way an
	// operations dashboard does.
	var st ingest.Stats
	for {
		resp, err := http.Get(baseURL + "/v1/ingest/stats")
		if err != nil {
			log.Fatal(err)
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("ingest: %7d positions  %7d accepted  %5d groups  %2d merges\n",
			st.PositionsSeen, st.Accepted, st.Groups, st.Merges)
		if st.PositionsSeen >= int64(len(live)) {
			break
		}
		time.Sleep(500 * time.Millisecond)
	}
	if err := eng.Finalize(); err != nil {
		log.Fatal(err)
	}
	st = eng.StatsSnapshot()
	fmt.Printf("\nfeed drained: %d accepted, %d rejected, %d trips, %d vessels, %d groups\n\n",
		st.Accepted, st.Rejected, st.Trips, st.Vessels, st.Groups)

	// The monitor queries the hot inventory per report: replay three
	// vessels as "today's" traffic against the normalcy the daemon just
	// accumulated.
	inv := eng.Snapshot()
	monitor := stream.NewMonitor(inv, portIdx, fleet.Fleet().StaticIndex(), stream.Options{})
	var replay []model.PositionRecord
	for i := 0; i < 3; i++ {
		replay = append(replay, tracks[i]...)
	}
	sort.Slice(replay, func(i, j int) bool { return replay[i].Time < replay[j].Time })

	portName := func(id model.PortID) string {
		if p, ok := gaz.ByID(id); ok {
			return p.Name
		}
		return fmt.Sprintf("port-%d", id)
	}
	shown := 0
	for _, rec := range replay {
		for _, e := range monitor.Ingest(rec) {
			ts := time.Unix(e.Time, 0).UTC().Format("Jan 02 15:04")
			switch e.Kind {
			case stream.EventPortDeparture:
				fmt.Printf("%s  vessel %d departed %s\n", ts, e.MMSI, portName(e.Port))
			case stream.EventPortArrival:
				fmt.Printf("%s  vessel %d arrived at %s\n", ts, e.MMSI, portName(e.Port))
			case stream.EventDestinationChanged:
				fmt.Printf("%s  vessel %d now most probably bound for %s\n", ts, e.MMSI, portName(e.Dest))
			case stream.EventAnomalyStarted:
				fmt.Printf("%s  vessel %d ANOMALY score %.2f\n", ts, e.MMSI, e.Score)
			case stream.EventAnomalyCleared:
				fmt.Printf("%s  vessel %d anomaly cleared\n", ts, e.MMSI)
			}
			shown++
		}
		if shown > 60 {
			fmt.Println("... (truncated)")
			break
		}
	}
	fmt.Printf("\nmonitor tracked %d vessels over the live inventory\n", monitor.Tracked())
}
