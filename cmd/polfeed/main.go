// Command polfeed streams a recorded NMEA archive into a live daemon's
// feed port — the scripted replacement for `nc host:port < archive` in
// smoke tests and chaos drills, with extras netcat can't give us: it
// survives daemon restarts and failovers (reconnect with jittered
// backoff, resuming a little before where the last connection died), it
// can wait for the daemon to finish absorbing the archive (polling
// /v1/ingest/stats until the counters stop moving), and it doubles as a
// minimal HTTP fetcher so end-to-end scripts need neither nc nor curl.
//
// Usage:
//
//	polfeed -addr localhost:10110 archive.nmea
//	polfeed -addr localhost:10110 -stats http://localhost:8080/v1/ingest/stats archive.nmea
//	polfeed -addr primary:10110,replica:10110 -probe http://primary:8080,http://replica:8081 archive.nmea
//	polfeed -get http://localhost:8080/readyz
//
// Reconnects resume -rewind lines before the first unacknowledged line;
// the daemon's cleaner rejects the duplicated prefix deterministically
// (duplicate/out-of-order rejects never reach the journal), so over-
// sending is always safe and under-sending never is. With -probe, each
// (re)connection first asks every listed HTTP base for its replication
// term (X-Pol-Term on /v1/repl/manifest) and feeds the -addr entry at
// the same position as the highest-term responder — after a failover the
// feeder follows the promoted primary on its own.
//
// With -stats, after the archive has been written polfeed polls the
// stats endpoint until the groups/accepted/rejected counters are
// unchanged between consecutive polls (i.e. the daemon has drained its
// queue and merged), then prints the final stats JSON to stdout. When
// -stats lists several URLs (parallel to -addr), the one matching the
// endpoint that took the final line is polled.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"github.com/patternsoflife/pol/internal/ingest"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("polfeed: ")

	var (
		addr     = flag.String("addr", "localhost:10110", "daemon NMEA feed address, or a comma-separated list of candidates")
		statsURL = flag.String("stats", "", "poll this /v1/ingest/stats URL until counters settle, then print it (comma list parallel to -addr)")
		probeURL = flag.String("probe", "", "comma-separated HTTP bases (parallel to -addr) probed for the highest replication term before each connection")
		getURL   = flag.String("get", "", "fetch this URL, print the body and exit (no feeding)")
		timeout  = flag.Duration("timeout", 2*time.Minute, "overall deadline for connect, feed and settle")
		poll     = flag.Duration("poll", 200*time.Millisecond, "stats polling interval")
		rewind   = flag.Int("rewind", 256, "lines to re-send before the resume point after a reconnect")
		rate     = flag.Float64("rate", 0, "feed rate in lines/second (0 = as fast as the socket takes them)")
	)
	flag.Parse()

	if *getURL != "" {
		body, status, err := fetch(*getURL, *timeout)
		if err != nil {
			log.Fatal(err)
		}
		os.Stdout.Write(body)
		if status < 200 || status >= 300 {
			os.Exit(1)
		}
		return
	}

	in := io.Reader(os.Stdin)
	if flag.NArg() > 0 && flag.Arg(0) != "-" {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		in = f
	}
	lines, err := readLines(in)
	if err != nil {
		log.Fatal(err)
	}

	addrs := splitList(*addr)
	if len(addrs) == 0 {
		log.Fatal("-addr required")
	}
	statsURLs := splitList(*statsURL)
	probes := splitList(*probeURL)
	if len(probes) > 0 && len(probes) != len(addrs) {
		log.Fatalf("-probe lists %d bases for %d -addr entries; they must be parallel", len(probes), len(addrs))
	}

	deadline := time.Now().Add(*timeout)
	cur, sent := 0, 0
	delay := 250 * time.Millisecond
	for attempt := 0; sent < len(lines); attempt++ {
		if time.Now().After(deadline) {
			log.Fatalf("deadline: fed %d/%d lines", sent, len(lines))
		}
		if i, ok := probeBest(probes, 2*time.Second); ok {
			cur = i
		} else if attempt > 0 {
			// No term signal (no probes configured, or nobody answered
			// one): rotate blindly so a dead candidate can't pin us.
			cur = (cur + 1) % len(addrs)
		}
		start := sent - *rewind
		if start < 0 {
			start = 0
		}
		n, err := feed(addrs[cur], lines[start:], *rate, deadline)
		sent = start + n
		if err == nil {
			break
		}
		log.Printf("feed %s: %v after %d/%d lines; reconnecting", addrs[cur], err, sent, len(lines))
		d := delay/2 + time.Duration(rand.Int63n(int64(delay)))
		delay *= 2
		if delay > 5*time.Second {
			delay = 5 * time.Second
		}
		time.Sleep(d)
	}
	log.Printf("fed %d lines to %s", len(lines), addrs[cur])

	if len(statsURLs) == 0 {
		return
	}
	su := statsURLs[0]
	if len(statsURLs) > 1 {
		if len(statsURLs) != len(addrs) {
			log.Fatalf("-stats lists %d URLs for %d -addr entries; they must be parallel", len(statsURLs), len(addrs))
		}
		su = statsURLs[cur]
	}
	stats, err := settle(su, *poll, deadline)
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(stats)
}

func splitList(s string) []string {
	var out []string
	for _, v := range strings.Split(s, ",") {
		if v = strings.TrimSpace(v); v != "" {
			out = append(out, v)
		}
	}
	return out
}

// readLines slurps the archive up front so reconnects can rewind to any
// line without re-reading (stdin is not seekable).
func readLines(in io.Reader) ([][]byte, error) {
	var lines [][]byte
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := make([]byte, 0, len(sc.Bytes())+1)
		line = append(line, sc.Bytes()...)
		lines = append(lines, append(line, '\n'))
	}
	return lines, sc.Err()
}

// probeBest asks every probe base for its replication term and returns
// the index of the highest-term 200 responder (false when none answer
// or no probes are configured).
func probeBest(probes []string, timeout time.Duration) (int, bool) {
	best, bestTerm, bestNode := -1, uint64(0), uint64(0)
	client := &http.Client{Timeout: timeout}
	for i, base := range probes {
		resp, err := client.Get(strings.TrimRight(base, "/") + "/v1/repl/manifest")
		if err != nil {
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			continue
		}
		rt, rn := ingest.TermFromHeader(resp.Header)
		if best < 0 || ingest.TermBeats(rt, rn, bestTerm, bestNode) {
			best, bestTerm, bestNode = i, rt, rn
		}
	}
	return best, best >= 0
}

// feed writes lines over one connection, returning how many made it out.
// A nil error means every line was written and the connection closed
// cleanly; the caller resumes from the returned count otherwise.
func feed(addr string, lines [][]byte, rate float64, deadline time.Time) (int, error) {
	// Bound each connection attempt well under the overall deadline: the
	// outer reconnect loop re-probes and may pick a different candidate,
	// which a full-deadline dial against a dead one would starve.
	dialBy := time.Now().Add(3 * time.Second)
	if dialBy.After(deadline) {
		dialBy = deadline
	}
	conn, err := dialUntil(addr, dialBy)
	if err != nil {
		return 0, err
	}
	var interval time.Duration
	if rate > 0 {
		interval = time.Duration(float64(time.Second) / rate)
	}
	next := time.Now()
	w := bufio.NewWriter(conn)
	for i, line := range lines {
		if interval > 0 {
			if d := time.Until(next); d > 0 {
				// Paced feeds flush before sleeping so the daemon sees
				// lines at the configured rate, not in buffered bursts.
				if err := w.Flush(); err != nil {
					conn.Close()
					return i, err
				}
				time.Sleep(d)
			}
			next = next.Add(interval)
		}
		if _, err := w.Write(line); err != nil {
			conn.Close()
			return i, err
		}
	}
	if err := w.Flush(); err != nil {
		conn.Close()
		return len(lines), err
	}
	return len(lines), conn.Close()
}

// dialUntil retries the feed connection until the deadline so scripts
// can start polfeed immediately after the daemon without sleeping.
func dialUntil(addr string, deadline time.Time) (net.Conn, error) {
	for {
		conn, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			return conn, nil
		}
		if time.Now().After(deadline) {
			return nil, err
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// settle polls the stats endpoint until the daemon has demonstrably
// finished absorbing the feed: every feed connection has reached EOF,
// the submission queue is empty, and the ingestion counters are
// identical across three consecutive polls (so the final merge has
// landed). Counter stability alone is not enough — a long journal fsync
// can freeze every counter for hundreds of milliseconds mid-ingest and
// fake a settle.
func settle(url string, poll time.Duration, deadline time.Time) ([]byte, error) {
	var prev string
	stable := 0
	for {
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("stats did not settle before deadline (%s)", url)
		}
		body, status, err := fetch(url, time.Until(deadline))
		if err != nil || status != http.StatusOK {
			time.Sleep(poll)
			continue
		}
		cur, drained, ok := counterKey(body)
		if ok && drained && cur == prev {
			if stable++; stable >= 2 {
				return body, nil
			}
		} else {
			stable = 0
		}
		prev = cur
		time.Sleep(poll)
	}
}

// counterKey reduces a stats document to the counters that move while
// ingestion is still in flight (volatile fields like uptime are
// excluded so settle terminates) plus whether the daemon has drained:
// all feeds at EOF and nothing left in the submission queue.
func counterKey(body []byte) (key string, drained, ok bool) {
	var s struct {
		Positions  int64 `json:"positions_seen"`
		Statics    int64 `json:"statics_seen"`
		Accepted   int64 `json:"accepted"`
		Rejected   int64 `json:"rejected"`
		Groups     int64 `json:"groups"`
		Dropped    int64 `json:"degraded_dropped"`
		QueueDepth int   `json:"queue_depth"`
		Obs        int64 `json:"observations"`
		MergedObs  int64 `json:"merged_observations"`
		Feeds      []struct {
			Closed bool `json:"closed"`
		} `json:"feeds"`
	}
	if err := json.Unmarshal(body, &s); err != nil {
		return "", false, false
	}
	// Drained = every feed at EOF, nothing queued, and every emitted
	// observation folded into a published snapshot (a long merge can
	// freeze the counters for several polls while a trip is still
	// unpublished).
	drained = s.QueueDepth == 0 && s.Obs == s.MergedObs
	for _, f := range s.Feeds {
		if !f.Closed {
			drained = false
		}
	}
	key = fmt.Sprintf("%d/%d/%d/%d/%d/%d",
		s.Positions, s.Statics, s.Accepted, s.Rejected, s.Groups, s.Dropped)
	return key, drained, true
}

func fetch(url string, timeout time.Duration) ([]byte, int, error) {
	client := &http.Client{Timeout: timeout}
	resp, err := client.Get(url)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, 0, err
	}
	return body, resp.StatusCode, nil
}
