// Route forecasting example (paper §4.1.3): given a vessel performing a
// known origin-destination trip, retrieve the inventory cells of the
// (origin, destination, vessel-type) key, organize them into a transition
// graph, and forecast the remaining route with A*. The forecast is printed
// as an ASCII chart of the cell path.
package main

import (
	"fmt"
	"log"
	"math"
	"strings"

	"github.com/patternsoflife/pol/internal/dataflow"
	"github.com/patternsoflife/pol/internal/geo"
	"github.com/patternsoflife/pol/internal/hexgrid"
	"github.com/patternsoflife/pol/internal/model"
	"github.com/patternsoflife/pol/internal/pipeline"
	"github.com/patternsoflife/pol/internal/ports"
	"github.com/patternsoflife/pol/internal/routing"
	"github.com/patternsoflife/pol/internal/sim"
)

func main() {
	log.SetFlags(0)

	gaz := ports.Default()
	fleet, err := sim.New(sim.Config{Vessels: 40, Days: 30, Seed: 7}, gaz)
	if err != nil {
		log.Fatal(err)
	}
	tracks := make([][]model.PositionRecord, 40)
	var voyages []sim.Voyage
	for i := range tracks {
		var voys []sim.Voyage
		tracks[i], voys = fleet.VesselTrack(i)
		voyages = append(voyages, voys...)
	}
	ctx := dataflow.NewContext(0)
	records := dataflow.Generate(ctx, len(tracks), func(i int) []model.PositionRecord { return tracks[i] })
	result, err := pipeline.Run(records, fleet.Fleet().StaticIndex(), ports.NewIndex(gaz, ports.IndexResolution),
		pipeline.Options{Resolution: 6, Description: "route forecast example"})
	if err != nil {
		log.Fatal(err)
	}
	inv := result.Inventory

	// Choose a long completed voyage and forecast from one third in.
	end := fleet.Config().Start.Unix() + int64(fleet.Config().Days)*86400
	var voyage sim.Voyage
	for _, v := range voyages {
		if v.ArriveTime < end && v.Route.DistM > 4e6 {
			voyage = v
			break
		}
	}
	if voyage.MMSI == 0 {
		log.Fatal("no suitable voyage")
	}
	origin, _ := gaz.ByID(voyage.Route.Origin)
	dest, _ := gaz.ByID(voyage.Route.Dest)
	from := voyage.Route.PointAtDistance(voyage.Route.DistM / 3)

	graph, err := routing.Build(inv, voyage.Route.Origin, voyage.Route.Dest, voyage.VType)
	if err != nil {
		log.Fatal(err)
	}
	path, err := graph.ShortestPath(from, dest.Pos)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("voyage %s → %s (%s), vessel at 33%% of the route\n", origin.Name, dest.Name, voyage.VType)
	fmt.Printf("transition graph: %d cells for this OD key\n", graph.Size())
	fmt.Printf("forecast: %d cells, ~%.0f km\n\n", len(path), pathLength(path)/1000)

	// ASCII chart: project the forecast onto a small grid.
	plot(path, from, dest.Pos)

	fmt.Println("\nfirst cells of the forecast:")
	for i, c := range path[:min(8, len(path))] {
		p := c.LatLng()
		fmt.Printf("  %2d. %v  (%.2f, %.2f)\n", i+1, c, p.Lat, p.Lng)
	}
}

// pathLength sums great-circle hops along the forecast cells.
func pathLength(path []hexgrid.Cell) float64 {
	var total float64
	for i := 1; i < len(path); i++ {
		total += geo.Haversine(path[i-1].LatLng(), path[i].LatLng())
	}
	return total
}

// plot renders the forecast as a small ASCII chart: '*' forecast cells,
// 'S' the vessel, 'D' the destination.
func plot(path []hexgrid.Cell, from, to geo.LatLng) {
	const w, h = 72, 20
	minLat, maxLat := math.Inf(1), math.Inf(-1)
	minLng, maxLng := math.Inf(1), math.Inf(-1)
	expand := func(p geo.LatLng) {
		minLat, maxLat = math.Min(minLat, p.Lat), math.Max(maxLat, p.Lat)
		minLng, maxLng = math.Min(minLng, p.Lng), math.Max(maxLng, p.Lng)
	}
	for _, c := range path {
		expand(c.LatLng())
	}
	expand(from)
	expand(to)
	if maxLat-minLat < 1 {
		maxLat, minLat = maxLat+0.5, minLat-0.5
	}
	if maxLng-minLng < 1 {
		maxLng, minLng = maxLng+0.5, minLng-0.5
	}
	grid := make([][]byte, h)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(".", w))
	}
	put := func(p geo.LatLng, ch byte) {
		x := int((p.Lng - minLng) / (maxLng - minLng) * float64(w-1))
		y := int((maxLat - p.Lat) / (maxLat - minLat) * float64(h-1))
		grid[y][x] = ch
	}
	for _, c := range path {
		put(c.LatLng(), '*')
	}
	put(from, 'S')
	put(to, 'D')
	for _, row := range grid {
		fmt.Println(string(row))
	}
}
