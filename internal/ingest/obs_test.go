package ingest

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/patternsoflife/pol/internal/obs"
	"github.com/patternsoflife/pol/internal/sim"
)

// TestEngineTelemetry streams a fleet through an engine wired to a
// telemetry registry and verifies the counters, stage histograms,
// readiness transition, and uptime/snapshot-age reporting.
func TestEngineTelemetry(t *testing.T) {
	const res = 6
	statics, stream, _ := fleetStream(t, sim.Config{Vessels: 6, Days: 6, Seed: 11}, res)

	reg := obs.NewRegistry()
	e, err := NewEngine(Options{
		Resolution: res,
		MergeEvery: 50 * time.Millisecond,
		Metrics:    reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	// Fresh engine with no journal: nothing published with data yet.
	if e.Ready() {
		t.Error("engine ready before any data merge")
	}

	submitAll(t, e, statics, stream)
	if err := e.Finalize(); err != nil {
		t.Fatal(err)
	}
	if !e.Ready() {
		t.Error("engine not ready after finalize published data")
	}

	s := e.StatsSnapshot()
	if s.UptimeSeconds < 0 || s.SnapshotAgeSeconds < 0 {
		t.Errorf("negative uptime/age: %+v", s)
	}

	// The registry sees the same counts as the JSON stats — one source of
	// truth, two surfaces.
	out := reg.Expose()
	for _, want := range []string{
		"pol_ingest_positions_total", "pol_ingest_accepted_total",
		"pol_ingest_uptime_seconds", "pol_ingest_snapshot_age_seconds",
		`pol_pipeline_stage_seconds_count{stage="ingest_merge"}`,
		`pol_pipeline_stage_seconds_count{stage="ingest_publish"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %s", want)
		}
	}
	if !strings.Contains(out, "pol_ingest_positions_total "+strconv.FormatInt(s.PositionsSeen, 10)) {
		t.Errorf("positions counter mismatch: stats=%d exposition:\n%s", s.PositionsSeen,
			grepLine(out, "pol_ingest_positions_total"))
	}
	mergeHist := reg.Histogram(obs.MetricStageSeconds, obs.Labels{"stage": "ingest_merge"})
	if mergeHist.Count() == 0 {
		t.Error("no merge durations recorded")
	}

	// The watchdog wires the engine's accept/reject/merge signals.
	wd := obs.NewWatchdog(reg, obs.WatchdogOptions{Window: 8, MinSamples: 4})
	e.AttachWatchdog(wd)
	now := time.Now()
	for i := 0; i < 3; i++ {
		now = now.Add(time.Second)
		wd.Step(now)
	}
	if v := reg.Gauge(obs.MetricWatchdogValue, obs.Labels{"series": "ingest_merge_seconds"}).Value(); v < 0 {
		t.Errorf("merge seconds gauge %v", v)
	}
}

func grepLine(s, substr string) string {
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, substr) {
			return line
		}
	}
	return ""
}
