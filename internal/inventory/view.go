package inventory

import (
	"github.com/patternsoflife/pol/internal/geo"
	"github.com/patternsoflife/pol/internal/hexgrid"
	"github.com/patternsoflife/pol/internal/model"
)

// View is the read-only query surface of an inventory. Two implementations
// exist: the in-memory *Inventory (heap path, used by the live ingestion
// engine and the WAL-tailing replica) and segment.Reader (disk path, which
// answers the same queries from an on-disk POLSEG1 columnar segment without
// materializing the groups). The api, eta and routing layers are written
// against View so a process can serve either path interchangeably.
//
// Implementations must be safe for concurrent readers. Frozen snapshots
// and segment readers both satisfy that; a mutable master inventory does
// not (see the Inventory concurrency contract).
type View interface {
	// Info returns the build provenance.
	Info() BuildInfo
	// Len returns the number of groups across all grouping sets.
	Len() int
	// Get returns the summary for an exact group identifier.
	Get(key GroupKey) (*CellSummary, bool)
	// Cell returns the all-traffic summary of a cell (GSCell).
	Cell(cell hexgrid.Cell) (*CellSummary, bool)
	// At returns the all-traffic summary of the cell containing p.
	At(p geo.LatLng) (*CellSummary, bool)
	// CountGroups returns the number of groups in one grouping set.
	CountGroups(set GroupSet) int
	// Cells returns all cells of one grouping set, sorted.
	Cells(set GroupSet) []hexgrid.Cell
	// Each calls f for every (key, summary) pair until f returns false.
	Each(f func(GroupKey, *CellSummary) bool)
	// ODCells returns every cell with traffic for an OD+type key, sorted.
	ODCells(origin, dest model.PortID, vt model.VesselType) []hexgrid.Cell
	// ODSummary returns the summary for a cell under the OD grouping set.
	ODSummary(cell hexgrid.Cell, origin, dest model.PortID, vt model.VesselType) (*CellSummary, bool)
	// TypeSummary returns the summary for a (cell, vessel-type) group.
	TypeSummary(cell hexgrid.Cell, vt model.VesselType) (*CellSummary, bool)
	// MostFrequentDestination returns the top destination of a cell.
	MostFrequentDestination(cell hexgrid.Cell) (model.PortID, uint64, bool)
	// Compression returns the Table-4 compression metric for a set.
	Compression(set GroupSet) float64
	// Utilization returns the Table-4 H3-utilization metric.
	Utilization() float64
}

var _ View = (*Inventory)(nil)
