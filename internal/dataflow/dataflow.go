// Package dataflow is a small in-process parallel dataset engine — the
// from-scratch substitute for the Apache Spark substrate the paper runs on.
//
// A Dataset[T] is a lazy, partitioned collection. Narrow transformations
// (Map, Filter, FlatMap, MapPartitions, SortWithinPartitions) fuse into
// their parent's per-partition computation and never materialize
// intermediate state. Wide transformations (ReduceByKey, AggregateByKey,
// GroupByKey, RepartitionByKey) introduce a hash shuffle: the parent is
// evaluated once, bucketed by key hash, and downstream partitions read their
// bucket. Actions (Collect, Count, Foreach) trigger execution across a
// bounded worker pool.
//
// The engine provides exactly the execution semantics the paper's
// methodology needs (§3.3, Figure 3): partitioning by vessel identifier for
// the cleaning and trip-extraction phases, then re-partitioning by group
// identifier with map-side combining for the feature-extraction reduce.
//
// Datasets are immutable and safe to share; all user functions must be safe
// to call concurrently from multiple goroutines (they receive distinct
// partitions). Panics inside user functions are captured and returned as
// errors from actions, like Spark task failures.
package dataflow

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"
)

// Context owns execution resources and metrics for a family of datasets.
type Context struct {
	parallelism int
	metrics     *Metrics
	scratch     sync.Pool       // *shuffleScratch, reused across shuffles
	std         context.Context // cancellation source for all actions
}

// shuffleScratch is the per-partition working memory of a shuffle's
// count-then-fill bucketing pass: one bucket index per row and one running
// count per bucket. Pooled on the Context so consecutive shuffles (and the
// many partitions within one) reuse allocations instead of growing fresh
// buckets row by row.
type shuffleScratch struct {
	idx    []int32
	counts []int
}

// getScratch returns pooled scratch with idx sized for rows and counts
// zeroed for n buckets.
func (c *Context) getScratch(rows, n int) *shuffleScratch {
	sc, _ := c.scratch.Get().(*shuffleScratch)
	if sc == nil {
		sc = &shuffleScratch{}
	}
	if cap(sc.idx) < rows {
		sc.idx = make([]int32, rows)
	}
	sc.idx = sc.idx[:rows]
	if cap(sc.counts) < n {
		sc.counts = make([]int, n)
	}
	sc.counts = sc.counts[:n]
	for i := range sc.counts {
		sc.counts[i] = 0
	}
	return sc
}

func (c *Context) putScratch(sc *shuffleScratch) { c.scratch.Put(sc) }

// NewContext returns a Context executing up to parallelism concurrent
// partition tasks. Values below 1 default to GOMAXPROCS.
func NewContext(parallelism int) *Context {
	return NewContextWith(context.Background(), parallelism)
}

// NewContextWith is NewContext bound to a cancellation context: when std is
// cancelled, in-flight actions stop dispatching partition tasks and return
// std's error instead of running the remaining stages to completion.
// Cancellation is observed at partition-task boundaries, so promptness
// scales with partition granularity, not dataset size.
func NewContextWith(std context.Context, parallelism int) *Context {
	if parallelism < 1 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if std == nil {
		std = context.Background()
	}
	return &Context{parallelism: parallelism, metrics: newMetrics(), std: std}
}

// Parallelism returns the worker-pool width.
func (c *Context) Parallelism() int { return c.parallelism }

// Err returns the cancellation state of the bound context: nil while the
// context is live, the context's error once cancelled.
func (c *Context) Err() error { return c.std.Err() }

// Std returns the bound standard context — carrying cancellation and any
// ambient trace span threaded in by the caller (NewContextWith).
func (c *Context) Std() context.Context { return c.std }

// Metrics returns the execution metrics collected so far.
func (c *Context) Metrics() *Metrics { return c.metrics }

// Dataset is a lazy partitioned collection of T.
type Dataset[T any] struct {
	ctx     *Context
	nParts  int
	name    string
	compute func(part int) ([]T, error)
}

// Context returns the owning execution context.
func (d *Dataset[T]) Context() *Context { return d.ctx }

// NumPartitions returns the partition count.
func (d *Dataset[T]) NumPartitions() int { return d.nParts }

// Name returns the stage name used in metrics.
func (d *Dataset[T]) Name() string { return d.name }

// Pair is a keyed record, the element type of all by-key operations.
type Pair[K comparable, V any] struct {
	Key   K
	Value V
}

// Parallelize distributes items round-robin over numPartitions partitions
// (values below 1 default to the context parallelism).
func Parallelize[T any](ctx *Context, items []T, numPartitions int) *Dataset[T] {
	if numPartitions < 1 {
		numPartitions = ctx.parallelism
	}
	if numPartitions > len(items) && len(items) > 0 {
		numPartitions = len(items)
	}
	if len(items) == 0 {
		numPartitions = 1
	}
	return &Dataset[T]{
		ctx:    ctx,
		nParts: numPartitions,
		name:   "parallelize",
		compute: func(part int) ([]T, error) {
			n := len(items)
			lo := part * n / numPartitions
			hi := (part + 1) * n / numPartitions
			return items[lo:hi], nil
		},
	}
}

// FromPartitions wraps pre-partitioned data without copying.
func FromPartitions[T any](ctx *Context, parts [][]T) *Dataset[T] {
	if len(parts) == 0 {
		parts = [][]T{nil}
	}
	return &Dataset[T]{
		ctx:     ctx,
		nParts:  len(parts),
		name:    "fromPartitions",
		compute: func(part int) ([]T, error) { return parts[part], nil },
	}
}

// Generate creates a dataset whose partitions are produced on demand by gen,
// which is called once per partition index in [0, numPartitions). This is
// how the simulator exposes a fleet's AIS stream without materializing it
// up front.
func Generate[T any](ctx *Context, numPartitions int, gen func(part int) []T) *Dataset[T] {
	if numPartitions < 1 {
		numPartitions = 1
	}
	return &Dataset[T]{
		ctx:     ctx,
		nParts:  numPartitions,
		name:    "generate",
		compute: func(part int) ([]T, error) { return gen(part), nil },
	}
}

// guard converts a panic from a user function into an error.
func guard(stage string, err *error) {
	if r := recover(); r != nil {
		*err = fmt.Errorf("dataflow: stage %s panicked: %v", stage, r)
	}
}

// Map applies f to every element.
func Map[T, U any](d *Dataset[T], name string, f func(T) U) *Dataset[U] {
	out := &Dataset[U]{ctx: d.ctx, nParts: d.nParts, name: name}
	out.compute = func(part int) (res []U, err error) {
		defer guard(name, &err)
		in, err := d.compute(part)
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		res = make([]U, len(in))
		for i, x := range in {
			res[i] = f(x)
		}
		d.ctx.metrics.add(name, int64(len(in)), int64(len(res)), time.Since(t0))
		return res, nil
	}
	return out
}

// Filter keeps the elements matching pred.
func Filter[T any](d *Dataset[T], name string, pred func(T) bool) *Dataset[T] {
	out := &Dataset[T]{ctx: d.ctx, nParts: d.nParts, name: name}
	out.compute = func(part int) (res []T, err error) {
		defer guard(name, &err)
		in, err := d.compute(part)
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		res = make([]T, 0, len(in)/2)
		for _, x := range in {
			if pred(x) {
				res = append(res, x)
			}
		}
		d.ctx.metrics.add(name, int64(len(in)), int64(len(res)), time.Since(t0))
		return res, nil
	}
	return out
}

// FlatMap applies f to every element and concatenates the results.
func FlatMap[T, U any](d *Dataset[T], name string, f func(T) []U) *Dataset[U] {
	out := &Dataset[U]{ctx: d.ctx, nParts: d.nParts, name: name}
	out.compute = func(part int) (res []U, err error) {
		defer guard(name, &err)
		in, err := d.compute(part)
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		for _, x := range in {
			res = append(res, f(x)...)
		}
		d.ctx.metrics.add(name, int64(len(in)), int64(len(res)), time.Since(t0))
		return res, nil
	}
	return out
}

// MapPartitions applies f to each whole partition, enabling per-partition
// state (sorting, sessionization, combining).
func MapPartitions[T, U any](d *Dataset[T], name string, f func(part int, in []T) []U) *Dataset[U] {
	out := &Dataset[U]{ctx: d.ctx, nParts: d.nParts, name: name}
	out.compute = func(part int) (res []U, err error) {
		defer guard(name, &err)
		in, err := d.compute(part)
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		res = f(part, in)
		d.ctx.metrics.add(name, int64(len(in)), int64(len(res)), time.Since(t0))
		return res, nil
	}
	return out
}

// SortWithinPartitions sorts each partition independently with less —
// the paper's per-vessel timestamp ordering step.
func SortWithinPartitions[T any](d *Dataset[T], name string, less func(a, b T) bool) *Dataset[T] {
	return MapPartitions(d, name, func(_ int, in []T) []T {
		out := make([]T, len(in))
		copy(out, in)
		sort.SliceStable(out, func(i, j int) bool { return less(out[i], out[j]) })
		return out
	})
}

// KeyBy pairs every element with the key extracted by f.
func KeyBy[K comparable, T any](d *Dataset[T], name string, f func(T) K) *Dataset[Pair[K, T]] {
	return Map(d, name, func(x T) Pair[K, T] { return Pair[K, T]{Key: f(x), Value: x} })
}

// Values drops the keys of a keyed dataset.
func Values[K comparable, V any](d *Dataset[Pair[K, V]], name string) *Dataset[V] {
	return Map(d, name, func(p Pair[K, V]) V { return p.Value })
}

// Cache materializes the dataset on first evaluation and serves subsequent
// computations from memory. Use it when a dataset feeds multiple downstream
// stages.
func Cache[T any](d *Dataset[T]) *Dataset[T] {
	var once sync.Once
	var parts [][]T
	var cacheErr error
	out := &Dataset[T]{ctx: d.ctx, nParts: d.nParts, name: d.name + ".cache"}
	out.compute = func(part int) ([]T, error) {
		once.Do(func() {
			parts = make([][]T, d.nParts)
			cacheErr = d.ctx.runParallel(d.nParts, func(p int) error {
				rows, err := d.compute(p)
				if err != nil {
					return err
				}
				parts[p] = rows
				return nil
			})
		})
		if cacheErr != nil {
			return nil, cacheErr
		}
		return parts[part], nil
	}
	return out
}

// runParallel executes f(0..tasks-1) over at most width goroutines and
// returns the first error. Workers stop claiming new tasks once the
// context's cancellation fires, and the cancellation error is reported when
// no task failed first.
func (c *Context) runParallel(tasks int, f func(i int) error) error {
	width := c.parallelism
	if width > tasks {
		width = tasks
	}
	if width < 1 {
		width = 1
	}
	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		next      int
		err       error
		cancelled bool
	)
	for w := 0; w < width; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if err != nil || next >= tasks {
					mu.Unlock()
					return
				}
				if c.std.Err() != nil {
					cancelled = true
					mu.Unlock()
					return
				}
				i := next
				next++
				mu.Unlock()
				if e := f(i); e != nil {
					mu.Lock()
					if err == nil {
						err = e
					}
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	if err == nil && cancelled {
		err = fmt.Errorf("dataflow: cancelled: %w", c.std.Err())
	}
	return err
}

// Collect evaluates all partitions in parallel and returns the
// concatenated elements in partition order.
func Collect[T any](d *Dataset[T]) ([]T, error) {
	parts := make([][]T, d.nParts)
	err := d.ctx.runParallel(d.nParts, func(p int) error {
		rows, e := d.compute(p)
		if e != nil {
			return e
		}
		parts[p] = rows
		return nil
	})
	if err != nil {
		return nil, err
	}
	var total int
	for _, p := range parts {
		total += len(p)
	}
	out := make([]T, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out, nil
}

// Count evaluates the dataset and returns its total element count.
func Count[T any](d *Dataset[T]) (int64, error) {
	var mu sync.Mutex
	var total int64
	err := d.ctx.runParallel(d.nParts, func(p int) error {
		rows, e := d.compute(p)
		if e != nil {
			return e
		}
		mu.Lock()
		total += int64(len(rows))
		mu.Unlock()
		return nil
	})
	return total, err
}

// ForeachPartition evaluates the dataset, invoking f once per partition.
// f must be safe for concurrent calls on distinct partitions.
func ForeachPartition[T any](d *Dataset[T], f func(part int, rows []T) error) error {
	return d.ctx.runParallel(d.nParts, func(p int) error {
		rows, e := d.compute(p)
		if e != nil {
			return e
		}
		return f(p, rows)
	})
}
