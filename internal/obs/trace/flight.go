package trace

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// FlightDump is the JSON shape of one flight-recorder file: the
// last-K finished spans at the moment of an anomalous transition.
type FlightDump struct {
	Reason   string      `json:"reason"`
	Service  string      `json:"service"`
	UnixNano int64       `json:"unixNano"`
	Time     string      `json:"time"`
	Spans    []*SpanJSON `json:"spans"`
}

// RecordFlight dumps the last-K retained spans to a timestamped JSON
// file under the configured flight directory — the black-box record of
// what the process was doing when something anomalous happened (degraded
// transition, re-bootstrap, WAL corruption, watchdog anomaly). Dumps are
// rate-limited per reason so a flapping fault cannot fill the disk.
// Returns the written path; a nil tracer, unconfigured directory, or
// rate-limited call returns "" with a nil error.
func (t *Tracer) RecordFlight(reason string) (string, error) {
	if t == nil || t.opt.FlightDir == "" {
		return "", nil
	}
	now := time.Now()
	t.mu.Lock()
	if last, ok := t.flights[reason]; ok && now.Sub(last) < t.opt.FlightMinGap {
		t.mu.Unlock()
		return "", nil
	}
	t.flights[reason] = now
	t.mu.Unlock()

	spans := t.all()
	sort.Slice(spans, func(i, j int) bool { return spans[i].End.Before(spans[j].End) })
	if len(spans) > t.opt.FlightLast {
		spans = spans[len(spans)-t.opt.FlightLast:]
	}
	dump := FlightDump{
		Reason:   reason,
		Service:  t.Service(),
		UnixNano: now.UnixNano(),
		Time:     now.UTC().Format(time.RFC3339Nano),
		Spans:    make([]*SpanJSON, 0, len(spans)),
	}
	for _, s := range spans {
		dump.Spans = append(dump.Spans, t.spanJSON(s))
	}

	if err := os.MkdirAll(t.opt.FlightDir, 0o755); err != nil {
		return "", err
	}
	name := fmt.Sprintf("flight-%s-%s.json", now.UTC().Format("20060102T150405.000000000Z"), sanitizeReason(reason))
	path := filepath.Join(t.opt.FlightDir, name)
	data, err := json.MarshalIndent(dump, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return "", err
	}
	t.dumped.Add(1)
	return path, nil
}

// FlightDumps returns how many flight files this tracer has written.
func (t *Tracer) FlightDumps() int64 {
	if t == nil {
		return 0
	}
	return t.dumped.Load()
}

// sanitizeReason maps a free-form reason to a filename-safe slug.
func sanitizeReason(reason string) string {
	var b strings.Builder
	for _, r := range reason {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			b.WriteRune(r)
		default:
			b.WriteRune('-')
		}
	}
	if b.Len() == 0 {
		return "anomaly"
	}
	return b.String()
}
