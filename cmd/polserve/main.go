// Command polserve exposes an inventory over HTTP as a small JSON API —
// the "online querying" deployment the paper describes for stakeholders.
// See internal/api for the endpoint documentation.
//
// Batch mode serves a prebuilt inventory file: -inv loads a heap
// inventory, -seg opens a columnar segment in O(index) and answers
// queries straight off disk without materializing the groups. Live mode
// (-live) embeds the ingestion engine: it accepts timestamped NMEA feeds
// on -listen and serves the continuously updated inventory, so queries
// reflect traffic seen moments ago. Replica mode (-replica <primary-url>)
// serves a read-only copy of a primary's live inventory: it bootstraps
// from the primary's newest checkpoint generation over /v1/repl and tails
// the primary's WAL, so N stateless replicas scale out the query tier
// while one primary owns ingestion and durability. A replica lagging more
// than -max-lag answers /readyz with 200 "ready (degraded: replication
// lag ...)". Adding -segdir to replica mode switches to the disk-backed
// replica: it mirrors the primary's checkpoint segments into the
// directory (fetching only changed shard blocks over Range requests) and
// serves them memory-mapped — cold start is O(index) instead of
// O(inventory) and the resident set stays small. Either way the process
// shuts down cleanly on SIGINT/SIGTERM, draining in-flight requests.
//
// A heap replica is promotable: POST /v1/admin/promote (or `polquery
// -promote <url>`) drains the WAL tail, bumps the replication term, opens
// a fresh journal/checkpoint at the -journal/-checkpoint paths, starts
// accepting NMEA feeds on -listen, and serves the full /v1/repl surface
// so sibling replicas re-bootstrap onto it. Give each replica a distinct
// -term-file so the highest term it has seen survives restarts.
//
// Operational endpoints:
//
//	GET /metrics            Prometheus-style telemetry (per-endpoint
//	                        latency histograms, ingest counters,
//	                        pipeline stage durations, watchdog gauges)
//	GET /healthz            liveness (200 while the process serves)
//	GET /readyz             readiness (live mode: 503 until the first
//	                        data snapshot is published; degraded-mode
//	                        serving answers 200 "ready (degraded: ...)")
//	GET /v1/ops/anomalies   watchdog baselines and anomaly history
//	                        (live mode)
//	GET /v1/traces          recent distributed traces (tail-sampled);
//	                        /v1/traces/{id} returns one trace as a span
//	                        tree
//	GET /debug/pprof/       profiling handlers (behind -pprof)
//
// Usage:
//
//	polserve -inv fleet.polinv -addr :8080
//	polserve -seg fleet.polseg -addr :8080
//	polserve -live -listen :10110 -addr :8080 -journal live.wal -pprof
//	polserve -replica http://primary:8080 -addr :8081 -max-lag 10s
//	polserve -replica http://primary:8080 -segdir /var/lib/pol/segs -addr :8081
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/patternsoflife/pol/internal/api"
	"github.com/patternsoflife/pol/internal/fault"
	"github.com/patternsoflife/pol/internal/ingest"
	"github.com/patternsoflife/pol/internal/inventory"
	"github.com/patternsoflife/pol/internal/obs"
	"github.com/patternsoflife/pol/internal/obs/trace"
	"github.com/patternsoflife/pol/internal/ports"
	"github.com/patternsoflife/pol/internal/replica"
	"github.com/patternsoflife/pol/internal/segment"
)

func main() {
	var (
		invPath = flag.String("inv", "inventory.polinv", "inventory file (batch mode)")
		segPath = flag.String("seg", "", "columnar segment file to serve instead of -inv (batch mode, O(index) open)")
		addr    = flag.String("addr", ":8080", "HTTP listen address")

		live      = flag.Bool("live", false, "serve from a live ingestion engine instead of a file")
		listen    = flag.String("listen", ":10110", "NMEA feed listen address (live mode)")
		res       = flag.Int("res", 6, "hexgrid resolution (live mode)")
		tick      = flag.Duration("tick", 2*time.Second, "inventory merge interval (live mode)")
		journal   = flag.String("journal", "", "write-ahead journal path (live mode, empty disables)")
		ckpt      = flag.String("checkpoint", "", "periodic inventory checkpoint path (live mode)")
		ckptEvery = flag.Int("checkpoint-every", 16, "merges between checkpoints (live mode)")
		walSeg    = flag.Int64("wal-segment-bytes", 0, "journal segment rotation threshold (live mode, 0 = default 64 MiB)")
		idle      = flag.Duration("idle-timeout", 5*time.Minute, "drop feeds silent for this long (live mode)")

		replicaOf  = flag.String("replica", "", "comma-separated primary base URLs to replicate from (replica mode, e.g. http://primary:8080); with several, the highest-term endpoint wins")
		segDir     = flag.String("segdir", "", "disk-backed replica: mirror the primary's segments into this directory and serve them mapped (replica mode)")
		maxLag     = flag.Duration("max-lag", 15*time.Second, "replication lag before /readyz reports degraded (replica mode)")
		maxSnapAge = flag.Duration("max-snapshot-age", 0, "snapshot age before /readyz reports degraded (live/replica mode, 0 disables)")
		probeEvery = flag.Duration("probe-every", 2*time.Second, "endpoint probe cadence when -replica lists several endpoints")
		drainTmo   = flag.Duration("drain-timeout", 3*time.Second, "WAL drain bound during promotion; past it the promotion proceeds from last-applied (replica mode)")
		termFile   = flag.String("term-file", "", "replication term high-water file (replica mode; default <checkpoint>.term when -checkpoint is set)")

		inflight  = flag.Int("max-inflight", 0, "max concurrent HTTP requests before shedding with 429 (0 disables)")
		pprofOn   = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		accessLog = flag.Bool("access-log", false, "log one structured line per HTTP request")
		flightDir = flag.String("flight-dir", "", "flight-recorder dump directory (default: the journal/checkpoint directory; disabled when neither is set)")
	)
	flag.Parse()

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil)).With("app", "polserve")

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	if active := fault.Default().Active(); len(active) > 0 {
		logger.Warn("failpoints armed", "points", active)
	}

	reg := obs.NewRegistry()
	mux := http.NewServeMux()
	gaz := ports.Default()
	ready := func() (bool, string) { return true, "" }
	var cleanup func()

	if *live && *replicaOf != "" {
		fatal(logger, "flags", errors.New("-live and -replica are mutually exclusive"))
	}
	if *segDir != "" && *replicaOf == "" {
		fatal(logger, "flags", errors.New("-segdir needs -replica (it is the disk-backed replica mode)"))
	}

	// Every mode gets a tracer and the /v1/traces query surface; the
	// flight recorder needs a data directory to dump into.
	fdir := *flightDir
	if fdir == "" {
		switch {
		case *journal != "":
			fdir = filepath.Dir(*journal)
		case *ckpt != "":
			fdir = filepath.Dir(*ckpt)
		}
	}
	service := "polserve"
	switch {
	case *replicaOf != "":
		service = "polserve-replica"
	case *live:
		service = "polserve-live"
	}
	tr := trace.New(trace.Options{Service: service, FlightDir: fdir})
	tr.Mount(mux)

	replicaErr := make(chan error, 1)
	if *replicaOf != "" && *segDir != "" {
		d, err := replica.NewDisk(replica.DiskOptions{
			Primary:    *replicaOf,
			Resolution: *res,
			Dir:        *segDir,
			PollEvery:  *tick,
			Metrics:    reg,
			Logf:       logf(logger.With("sub", "diskreplica")),
		})
		if err != nil {
			fatal(logger, "disk replica start", err)
		}
		go func() { replicaErr <- d.Run(ctx) }()
		logger.Info("disk replica mode", "primary", *replicaOf, "dir", *segDir)

		mux.Handle("/", api.NewLiveServer(d, gaz).WithMetrics(reg).WithTracing(tr).Handler())
		mux.Handle("GET /v1/replica/status", d.StatusHandler())
		ready = d.ReadyDetail
		cleanup = func() {
			if err := d.Close(); err != nil {
				logger.Error("disk replica close", "err", err)
			}
		}
	} else if *replicaOf != "" {
		tf := *termFile
		if tf == "" && *ckpt != "" {
			tf = *ckpt + ".term"
		}
		rep, err := replica.New(replica.Options{
			Primary:      *replicaOf,
			Resolution:   *res,
			MergeEvery:   *tick,
			MaxLag:       *maxLag,
			TermPath:     tf,
			ProbeEvery:   *probeEvery,
			DrainTimeout: *drainTmo,
			Metrics:      reg,
			Tracer:       tr,
			Faults:       fault.Default(),
			Logf:         logf(logger.With("sub", "replica")),
		})
		if err != nil {
			fatal(logger, "replica start", err)
		}
		go func() { replicaErr <- rep.Run(ctx) }()
		logger.Info("replica mode", "primary", *replicaOf, "maxLag", *maxLag, "termFile", tf)

		// Promotion turns this process into a primary: open the NMEA feed
		// listener exactly once, so feeders pointed at our -listen address
		// reconnect here after the failover.
		var promotedFeeds atomic.Pointer[ingest.Server]
		var promoteOnce sync.Once
		onPromoted := func() {
			promoteOnce.Do(func() {
				ln, err := net.Listen("tcp", *listen)
				if err != nil {
					logger.Error("promoted feed listen", "err", err)
					return
				}
				fs := ingest.NewServer(rep.Engine(), ln, ingest.ServerOptions{
					IdleTimeout: *idle,
					Logf:        logf(logger.With("sub", "feeds")),
				})
				promotedFeeds.Store(fs)
				logger.Info("promoted: accepting NMEA feeds", "addr", ln.Addr().String())
			})
		}

		mux.Handle("/", api.NewLiveServer(rep, gaz).WithMetrics(reg).WithTracing(tr).Handler())
		mux.Handle("GET /v1/replica/status", rep.StatusHandler())
		mux.Handle("GET /v1/repl/snapshot", rep.SnapshotHandler())
		// The full primary surface, live from the start: before promotion
		// the repl handlers answer for an engine with no generations; after
		// promotion siblings re-bootstrap from here.
		mux.Handle("GET /v1/repl/", rep.Engine().ReplHandler())
		mux.Handle("GET /v1/ingest/stats", rep.Engine().StatsHandler())
		mux.Handle("POST /v1/admin/promote", rep.PromoteHandler(replica.PromoteConfig{
			JournalPath:     *journal,
			CheckpointPath:  *ckpt,
			CheckpointEvery: *ckptEvery,
			WALSegmentBytes: *walSeg,
			DrainTimeout:    *drainTmo,
		}, onPromoted))
		ready = obs.StaleReady(rep.ReadyDetail, rep.SnapshotAge, *maxSnapAge)
		cleanup = func() {
			if fs := promotedFeeds.Load(); fs != nil {
				if err := fs.Close(); err != nil {
					logger.Error("feed listener close", "err", err)
				}
			}
			if err := rep.Close(); err != nil {
				logger.Error("replica close", "err", err)
			}
		}
	} else if *live {
		eng, err := ingest.NewEngine(ingest.Options{
			Resolution:      *res,
			MergeEvery:      *tick,
			JournalPath:     *journal,
			CheckpointPath:  *ckpt,
			CheckpointEvery: *ckptEvery,
			WALSegmentBytes: *walSeg,
			Description:     "polserve live ingestion",
			Metrics:         reg,
			Tracer:          tr,
			Logf:            logf(logger.With("sub", "engine")),
		})
		if err != nil {
			fatal(logger, "engine start", err)
		}
		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			fatal(logger, "feed listen", err)
		}
		feeds := ingest.NewServer(eng, ln, ingest.ServerOptions{
			IdleTimeout: *idle,
			Logf:        logf(logger.With("sub", "feeds")),
		})
		logger.Info("live mode", "feeds", ln.Addr().String(), "replayedGroups", eng.Snapshot().Len())

		wd := obs.NewWatchdog(reg, obs.WatchdogOptions{
			Logger: logger.With("sub", "watchdog"),
			OnAnomaly: func(a obs.Anomaly) {
				if path, err := tr.RecordFlight("watchdog-" + a.Series); err == nil && path != "" {
					logger.Warn("flight recorder dump", "reason", a.Series, "path", path)
				}
			},
		})
		eng.AttachWatchdog(wd)
		wd.Start()

		mux.Handle("/", api.NewLiveServer(eng, gaz).WithMetrics(reg).WithTracing(tr).Handler())
		mux.Handle("GET /v1/ingest/stats", eng.StatsHandler())
		mux.Handle("GET /v1/ops/anomalies", wd.Handler())
		mux.Handle("GET /v1/repl/", eng.ReplHandler())
		ready = obs.StaleReady(eng.ReadyDetail, eng.SnapshotAge, *maxSnapAge)
		cleanup = func() {
			wd.Stop()
			if err := feeds.Close(); err != nil {
				logger.Error("feed listener close", "err", err)
			}
			if err := eng.Close(); err != nil {
				logger.Error("engine close", "err", err)
			}
		}
	} else if *segPath != "" {
		rd, err := segment.Open(*segPath, segment.Options{Metrics: segment.NewMetrics(reg)})
		if err != nil {
			fatal(logger, "segment open", err)
		}
		logger.Info("serving segment", "path", *segPath, "groups", rd.Len(), "mapped", rd.Mapped())
		mux.Handle("/", api.NewServer(rd, gaz).WithMetrics(reg).WithTracing(tr).Handler())
		cleanup = func() {
			if err := rd.Close(); err != nil {
				logger.Error("segment close", "err", err)
			}
		}
	} else {
		inv, err := inventory.LoadFile(*invPath)
		if err != nil {
			fatal(logger, "inventory load", err)
		}
		logger.Info("serving inventory", "path", *invPath, "groups", inv.Len())
		mux.Handle("/", api.NewServer(inv, gaz).WithMetrics(reg).WithTracing(tr).Handler())
		cleanup = func() {}
	}

	mux.Handle("GET /metrics", reg.Handler())
	mux.Handle("GET /healthz", obs.HealthzHandler())
	mux.Handle("GET /readyz", obs.ReadyzDetailHandler(ready))
	if *pprofOn {
		mountPprof(mux)
		logger.Info("pprof enabled", "path", "/debug/pprof/")
	}

	var handler http.Handler = mux
	if *accessLog {
		handler = obs.AccessLog(logger.With("sub", "http"), handler)
	}
	handler = obs.Shed(reg, *inflight, handler)
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadTimeout:       10 * time.Second,
		ReadHeaderTimeout: 5 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	logger.Info("http listening", "addr", *addr)

	for done := false; !done; {
		select {
		case err := <-errc:
			fatal(logger, "http serve", err)
		case err := <-replicaErr:
			if errors.Is(err, replica.ErrPromoted) {
				// The replication loop is over because we are the primary
				// now; keep serving.
				logger.Info("replica promoted; serving as primary")
				continue
			}
			if ctx.Err() == nil {
				fatal(logger, "replica run", err)
			}
			done = true
		case <-ctx.Done():
			done = true
		}
	}
	logger.Info("shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Error("http shutdown", "err", err)
	}
	cleanup()
	logger.Info("bye")
}

// fatal logs the error and exits non-zero — the slog replacement for
// log.Fatal.
func fatal(logger *slog.Logger, msg string, err error) {
	logger.Error(msg, "err", err)
	os.Exit(1)
}

// logf adapts a slog logger to the printf-style hook the feed server
// takes.
func logf(logger *slog.Logger) func(string, ...any) {
	return func(format string, args ...any) {
		logger.Info(fmt.Sprintf(format, args...))
	}
}

// mountPprof registers the profiling handlers on an explicit mux (the
// pprof package only self-registers on http.DefaultServeMux).
func mountPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
