// Command polquery reads an inventory file and answers the paper's query
// patterns: per-location statistical summaries, most frequent destinations,
// and OD-key transition cells.
//
// Both on-disk formats are accepted anywhere a file is expected — the
// loader sniffs the 8-byte magic, so a .polinv heap inventory and a
// .polseg columnar segment are interchangeable, including under -equal
// (which compares bit-exact across formats).
//
// Usage:
//
//	polquery -inv fleet.polinv -at 51.9,3.2
//	polquery -inv fleet.polinv -at 51.9,3.2 -type container
//	polquery -inv fleet.polseg -cell 0c4000000012345
//	polquery -inv fleet.polinv -od-cells 1:63:container
//	polquery -inv fleet.polinv -info
//	polquery -inv primary.polinv -equal replica.polseg
//
// With -server the query goes to a running polserve/polingest daemon over
// HTTP instead of reading a file, and -trace additionally fetches and
// prints the server-side distributed trace of the query it just ran (the
// client injects a W3C traceparent and reads it back from /v1/traces/{id}):
//
//	polquery -server http://localhost:8080 -at 51.9,3.2 -trace
//
// Failover: -promote asks a replica daemon to take over as primary
// (drain the WAL tail, bump the replication term, open a fresh journal):
//
//	polquery -promote http://replica:8081
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/patternsoflife/pol/internal/geo"
	"github.com/patternsoflife/pol/internal/hexgrid"
	"github.com/patternsoflife/pol/internal/inventory"
	"github.com/patternsoflife/pol/internal/model"
	"github.com/patternsoflife/pol/internal/obs/trace"
	"github.com/patternsoflife/pol/internal/ports"
	"github.com/patternsoflife/pol/internal/segment"
)

// loadView opens an inventory in either on-disk format, sniffed by the
// 8-byte magic: a POLSEG1 columnar segment opens O(index) and answers
// queries straight off disk; anything else loads as a heap inventory.
func loadView(path string) inventory.View {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	var magic [8]byte
	n, _ := io.ReadFull(f, magic[:])
	f.Close()
	if segment.IsSegment(magic[:n]) {
		r, err := segment.Open(path, segment.Options{})
		if err != nil {
			log.Fatal(err)
		}
		return r
	}
	inv, err := inventory.LoadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	return inv
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("polquery: ")

	var (
		invPath = flag.String("inv", "inventory.polinv", "inventory file")
		at      = flag.String("at", "", "query location LAT,LNG")
		cellStr = flag.String("cell", "", "query an exact cell id (hex)")
		vtype   = flag.String("type", "", "vessel type filter (cargo|container|bulk|tanker|passenger)")
		odCells = flag.String("od-cells", "", "list cells for key ORIGIN:DEST:TYPE (route forecasting input)")
		info    = flag.Bool("info", false, "print inventory build info and exit")
		equal   = flag.String("equal", "", "compare -inv against this second inventory file; exit 0 when equal, 1 when not")
		server  = flag.String("server", "", "query a running daemon at this base URL instead of reading -inv")
		showTr  = flag.Bool("trace", false, "with -server: print the server-side trace tree of the query just run")
		promote = flag.String("promote", "", "promote the replica daemon at this base URL to primary (POST /v1/admin/promote) and print the result")
	)
	flag.Parse()

	if *promote != "" {
		runPromote(*promote)
		return
	}
	if *server != "" {
		runRemote(*server, *at, *vtype, *info, *showTr)
		return
	}
	if *showTr {
		log.Fatal("-trace needs -server (traces live on the daemon)")
	}

	inv := loadView(*invPath)
	gaz := ports.Default()

	if *equal != "" {
		other := loadView(*equal)
		if !inventory.EqualViews(inv, other) {
			fmt.Printf("NOT EQUAL: %s (%d groups) vs %s (%d groups)\n",
				*invPath, inv.Len(), *equal, other.Len())
			os.Exit(1)
		}
		fmt.Printf("EQUAL: %d groups at resolution %d\n", inv.Len(), inv.Info().Resolution)
		return
	}

	if *info {
		bi := inv.Info()
		fmt.Printf("resolution:    %d (avg cell %.2f km²)\n", bi.Resolution, hexgrid.AvgCellAreaKm2(bi.Resolution))
		fmt.Printf("raw records:   %d\n", bi.RawRecords)
		fmt.Printf("used records:  %d\n", bi.UsedRecords)
		fmt.Printf("built:         %s\n", time.Unix(bi.BuiltUnix, 0).UTC().Format(time.RFC3339))
		fmt.Printf("description:   %s\n", bi.Description)
		for _, gs := range inventory.AllGroupSets {
			fmt.Printf("groups %-40v %8d  compression %.4f%%\n", gs, inv.CountGroups(gs), inv.Compression(gs)*100)
		}
		fmt.Printf("cells: %d, global utilization %.6f%%\n", len(inv.Cells(inventory.GSCell)), inv.Utilization()*100)
		return
	}

	if *odCells != "" {
		parts := strings.Split(*odCells, ":")
		if len(parts) != 3 {
			log.Fatal("-od-cells wants ORIGIN:DEST:TYPE")
		}
		origin := resolvePort(gaz, parts[0])
		dest := resolvePort(gaz, parts[1])
		vt := parseType(parts[2])
		cells := inv.ODCells(origin, dest, vt)
		fmt.Printf("%d cells for key origin=%d dest=%d type=%v\n", len(cells), origin, dest, vt)
		for _, c := range cells {
			p := c.LatLng()
			fmt.Printf("%v\t%.4f\t%.4f\n", c, p.Lat, p.Lng)
		}
		return
	}

	var cell hexgrid.Cell
	switch {
	case *cellStr != "":
		var err error
		cell, err = hexgrid.ParseCell(*cellStr)
		if err != nil {
			log.Fatal(err)
		}
	case *at != "":
		var lat, lng float64
		if _, err := fmt.Sscanf(*at, "%f,%f", &lat, &lng); err != nil {
			log.Fatalf("bad -at %q: %v", *at, err)
		}
		cell = hexgrid.LatLngToCell(geo.LatLng{Lat: lat, Lng: lng}, inv.Info().Resolution)
	default:
		log.Fatal("need -at LAT,LNG, -cell ID, -od-cells KEY or -info (see -h)")
	}

	var s *inventory.CellSummary
	var ok bool
	if *vtype != "" {
		s, ok = inv.TypeSummary(cell, parseType(*vtype))
	} else {
		s, ok = inv.Cell(cell)
	}
	if !ok {
		log.Fatalf("no data for cell %v (no historical traffic)", cell)
	}
	printSummary(gaz, cell, s)
}

// runPromote asks a replica daemon to take over as primary. The drain
// can legitimately take a few seconds (it chases the old primary's WAL
// tip), so the client timeout is generous.
func runPromote(base string) {
	u := strings.TrimRight(base, "/") + "/v1/admin/promote"
	client := &http.Client{Timeout: 60 * time.Second}
	resp, err := client.Post(u, "application/json", nil)
	if err != nil {
		log.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("POST %s: status %d: %s", u, resp.StatusCode, strings.TrimSpace(string(body)))
	}
	fmt.Printf("promoted %s\n", base)
	os.Stdout.Write(body)
}

// runRemote answers the query over a daemon's HTTP API. The request
// carries a client-rooted W3C traceparent; with -trace the same trace ID
// is then read back from the daemon's /v1/traces/{id} endpoint and the
// server-side span tree is printed, so one invocation demonstrates
// end-to-end trace continuity from a terminal.
func runRemote(base, at, vtype string, info, showTrace bool) {
	var path string
	q := url.Values{}
	switch {
	case info:
		path = "/v1/info"
	case at != "":
		var lat, lng float64
		if _, err := fmt.Sscanf(at, "%f,%f", &lat, &lng); err != nil {
			log.Fatalf("bad -at %q: %v", at, err)
		}
		q.Set("lat", fmt.Sprintf("%f", lat))
		q.Set("lng", fmt.Sprintf("%f", lng))
		if vtype != "" {
			q.Set("type", strings.ToLower(vtype))
		}
		path = "/v1/cell"
	default:
		log.Fatal("-server mode wants -at LAT,LNG or -info")
	}
	u := strings.TrimRight(base, "/") + path
	if len(q) > 0 {
		u += "?" + q.Encode()
	}

	tr := trace.New(trace.Options{Service: "polquery"})
	span := tr.StartRoot("polquery.query")
	span.SetAttr("url", u)
	req, err := http.NewRequest(http.MethodGet, u, nil)
	if err != nil {
		log.Fatal(err)
	}
	trace.Inject(req, span)
	client := &http.Client{Timeout: 15 * time.Second}
	resp, err := client.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	span.Finish()
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("GET %s: status %d: %s", u, resp.StatusCode, strings.TrimSpace(string(body)))
	}
	os.Stdout.Write(body)

	if showTrace {
		fmt.Printf("\ntrace %s (%s in %s)\n", span.Trace, span.Name, span.Duration().Round(time.Microsecond))
		printServerTrace(client, strings.TrimRight(base, "/"), span.Trace.String())
	}
}

// printServerTrace fetches /v1/traces/{id} and prints the span tree. The
// server records its span when the middleware returns — effectively
// concurrent with the client reading the response — so a short retry
// absorbs that race.
func printServerTrace(client *http.Client, base, traceID string) {
	var payload struct {
		Service string            `json:"service"`
		Spans   []*trace.SpanJSON `json:"spans"`
	}
	u := base + "/v1/traces/" + traceID
	for attempt := 0; ; attempt++ {
		resp, err := client.Get(u)
		if err != nil {
			log.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			log.Fatal(err)
		}
		if resp.StatusCode == http.StatusOK {
			if err := json.Unmarshal(body, &payload); err != nil {
				log.Fatalf("decode %s: %v", u, err)
			}
			break
		}
		if resp.StatusCode == http.StatusNotFound && attempt < 20 {
			time.Sleep(50 * time.Millisecond)
			continue
		}
		log.Fatalf("GET %s: status %d: %s", u, resp.StatusCode, strings.TrimSpace(string(body)))
	}
	for _, s := range payload.Spans {
		printSpanTree(s, 0)
	}
}

func printSpanTree(s *trace.SpanJSON, depth int) {
	indent := strings.Repeat("  ", depth)
	mark := ""
	if s.Err {
		mark = "  ERROR"
	}
	fmt.Printf("%s%s [%s] %s%s\n", indent, s.Name, s.Service,
		(time.Duration(s.DurationUs) * time.Microsecond).Round(time.Microsecond), mark)
	for _, a := range s.Attrs {
		fmt.Printf("%s  · %s=%s\n", indent, a.Key, a.Value)
	}
	for _, c := range s.Children {
		printSpanTree(c, depth+1)
	}
}

func resolvePort(gaz *ports.Gazetteer, s string) model.PortID {
	if id, err := strconv.Atoi(s); err == nil {
		return model.PortID(id)
	}
	if p, ok := gaz.ByName(s); ok {
		return p.ID
	}
	log.Fatalf("unknown port %q", s)
	return 0
}

func parseType(s string) model.VesselType {
	switch strings.ToLower(s) {
	case "cargo":
		return model.VesselCargo
	case "container":
		return model.VesselContainer
	case "bulk":
		return model.VesselBulk
	case "tanker":
		return model.VesselTanker
	case "passenger":
		return model.VesselPassenger
	default:
		log.Fatalf("unknown vessel type %q", s)
		return model.VesselUnknown
	}
}

func portName(gaz *ports.Gazetteer, id model.PortID) string {
	if p, ok := gaz.ByID(id); ok {
		return p.Name
	}
	return fmt.Sprintf("port-%d", id)
}

func printSummary(gaz *ports.Gazetteer, cell hexgrid.Cell, s *inventory.CellSummary) {
	p := cell.LatLng()
	fmt.Printf("cell %v  center %.4f,%.4f  area %.2f km²\n", cell, p.Lat, p.Lng, cell.AreaKm2())
	fmt.Printf("records:   %d\n", s.Records)
	fmt.Printf("ships:     ~%d distinct\n", s.Ships.Estimate())
	fmt.Printf("trips:     ~%d distinct\n", s.Trips.Estimate())
	p10, p50, p90 := s.SpeedPercentiles()
	fmt.Printf("speed:     mean %.1f kn  std %.1f  p10/p50/p90 %.1f/%.1f/%.1f\n",
		s.Speed.Mean(), s.Speed.Std(), p10, p50, p90)
	fmt.Printf("course:    circular mean %.0f°  concentration %.2f\n", s.Course.Mean(), s.Course.Resultant())
	fmt.Printf("heading:   circular mean %.0f°\n", s.Heading.Mean())
	fmt.Printf("bins(30°): %v\n", s.CourseBins.Bins())
	fmt.Printf("ETO:       mean %s  p50 %s\n",
		time.Duration(s.ETO.Mean())*time.Second, time.Duration(s.ETODig.Quantile(0.5))*time.Second)
	fmt.Printf("ATA:       mean %s  p50 %s\n",
		time.Duration(s.ATA.Mean())*time.Second, time.Duration(s.ATADig.Quantile(0.5))*time.Second)
	fmt.Println("top origins:")
	for _, e := range s.Origins.Top(3) {
		fmt.Printf("  %-20s %d\n", portName(gaz, model.PortID(e.Key)), e.Count)
	}
	fmt.Println("top destinations:")
	for _, e := range s.Dests.Top(3) {
		fmt.Printf("  %-20s %d\n", portName(gaz, model.PortID(e.Key)), e.Count)
	}
	fmt.Println("top transitions:")
	for _, e := range s.TopTransitions(3) {
		c := hexgrid.Cell(e.Key)
		q := c.LatLng()
		fmt.Printf("  %v (%.3f,%.3f) %d\n", c, q.Lat, q.Lng, e.Count)
	}
}
