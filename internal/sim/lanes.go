package sim

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"github.com/patternsoflife/pol/internal/geo"
	"github.com/patternsoflife/pol/internal/model"
	"github.com/patternsoflife/pol/internal/ports"
)

// Canal identifies a man-made chokepoint whose edges can be closed by a
// disruption scenario (the paper's Suez motivation).
type Canal uint8

// Canals.
const (
	NoCanal Canal = iota
	SuezCanal
	PanamaCanal
)

// waypoint is a named node of the global shipping-lane graph.
type waypoint struct {
	name string
	pos  geo.LatLng
}

// laneEdge connects two nodes of the routing graph.
type laneEdge struct {
	to    int
	distM float64
	canal Canal
}

// LaneGraph is the global maritime routing graph: hand-built sea waypoints
// chained along the world's main shipping lanes, with every gazetteer port
// attached to its nearby waypoints. Routes between ports are geodesic
// shortest paths over this graph — the synthetic stand-in for the "vaguely
// defined" sea lanes the paper describes.
type LaneGraph struct {
	gaz       *ports.Gazetteer
	waypoints []waypoint
	// nodes: 0..len(waypoints)-1 are waypoints; waypoint count + (portID-1)
	// are ports.
	adj [][]laneEdge
}

// waypointTable returns the hand-built waypoint list. Positions are
// mid-channel / open-sea coordinates along real shipping lanes.
func waypointTable() []waypoint {
	w := func(name string, lat, lng float64) waypoint {
		return waypoint{name: name, pos: geo.LatLng{Lat: lat, Lng: lng}}
	}
	return []waypoint{
		// North Sea and Baltic
		w("dover", 51.05, 1.45),
		w("northsea-s", 52.00, 3.20),
		w("northsea-mid", 54.50, 5.50),
		w("skagen", 57.80, 10.70),
		w("kattegat", 56.70, 11.90),
		w("oresund", 55.60, 12.75),
		w("bornholm", 55.20, 15.20),
		w("baltic-mid", 55.80, 18.20),
		w("gotland-e", 57.50, 20.20),
		w("gulf-finland", 59.65, 24.50),
		w("gdansk-bay", 54.80, 19.00),
		w("norway-s", 58.50, 7.00),
		// English Channel and Biscay
		w("channel-mid", 50.15, -1.20),
		w("ushant", 48.70, -5.60),
		w("biscay", 45.50, -6.50),
		w("finisterre", 43.20, -9.80),
		w("lisbon-coast", 38.60, -9.80),
		w("st-vincent", 36.80, -9.40),
		// Mediterranean
		w("gibraltar", 35.95, -5.70),
		w("alboran", 36.30, -2.00),
		w("algiers-coast", 37.40, 4.00),
		w("sardinia-s", 38.10, 8.40),
		w("lion-gulf", 42.40, 4.80),
		w("ligurian", 43.70, 8.50),
		w("sicily-strait", 37.20, 11.40),
		w("malta-e", 35.80, 15.20),
		w("ionian", 36.80, 19.00),
		w("crete-s", 34.40, 24.50),
		w("aegean-s", 36.60, 24.80),
		w("dardanelles", 40.10, 26.00),
		w("marmara", 40.85, 28.30),
		w("bosporus", 41.20, 29.15),
		w("blacksea-mid", 43.60, 31.50),
		// Suez and Red Sea
		w("portsaid-app", 31.60, 32.30),
		w("gulf-suez", 28.80, 33.10),
		w("redsea-n", 27.20, 34.80),
		w("redsea-mid", 20.50, 38.60),
		w("bab-el-mandeb", 12.60, 43.40),
		w("gulf-aden", 12.80, 47.50),
		w("socotra", 12.80, 54.50),
		// Arabian Sea and Persian Gulf
		w("arabian-sea", 16.50, 61.00),
		w("hormuz-app", 25.20, 57.50),
		w("hormuz", 26.40, 56.60),
		w("persian-gulf", 27.20, 51.60),
		w("india-w", 17.00, 71.50),
		// Indian subcontinent and Bay of Bengal
		w("cape-comorin", 7.00, 77.40),
		w("dondra", 5.50, 80.70),
		w("bengal-mid", 13.00, 86.00),
		w("bengal-n", 20.00, 89.00),
		// Malacca and Southeast Asia
		w("malacca-n", 5.80, 97.20),
		w("malacca-mid", 3.60, 99.80),
		w("singapore-strait", 1.15, 103.70),
		w("scs-s", 3.50, 106.50),
		w("scs-mid", 10.50, 111.50),
		w("scs-n", 17.50, 114.50),
		w("hk-app", 21.80, 114.30),
		w("taiwan-strait", 24.40, 119.20),
		w("luzon-strait", 21.00, 120.90),
		// East Asia
		w("east-china", 28.80, 123.50),
		w("yellow-sea", 35.50, 123.00),
		w("bohai", 38.30, 119.80),
		w("korea-strait", 34.00, 128.80),
		w("japan-s", 33.50, 136.50),
		w("tokyo-app", 34.60, 139.70),
		// North Pacific great-circle lane
		w("npac-w", 40.50, 155.00),
		w("npac-mid", 46.00, 180.00),
		w("npac-e", 49.00, -150.00),
		w("juan-de-fuca", 48.40, -125.50),
		w("calif-coast", 38.50, -125.00),
		w("la-app", 33.50, -119.50),
		w("baja-s", 22.50, -110.50),
		w("c-america-w", 12.00, -92.00),
		w("panama-w", 7.20, -79.70),
		// Panama, Caribbean, Gulf of Mexico
		w("colon-app", 9.60, -79.90),
		w("caribbean-w", 13.50, -78.50),
		w("caribbean-mid", 15.50, -72.00),
		w("yucatan", 21.80, -85.50),
		w("gulf-mex", 25.50, -90.00),
		w("florida-strait", 24.20, -81.50),
		w("bahamas-e", 26.80, -76.00),
		// US East Coast and North Atlantic
		w("hatteras", 35.20, -74.50),
		w("ny-app", 40.30, -73.00),
		w("natl-w", 41.50, -60.00),
		w("natl-mid", 45.00, -40.00),
		w("natl-e", 48.50, -15.00),
		w("azores", 38.50, -28.00),
		// Atlantic south
		w("canaries", 28.50, -15.50),
		w("cape-verde", 16.50, -25.00),
		w("equator-atl", 0.50, -29.50),
		w("recife", -8.50, -34.00),
		w("cabo-frio", -23.50, -41.50),
		w("rio-plata", -35.50, -53.50),
		// West and South Africa
		w("guinea-gulf", 3.00, 2.00),
		w("angola-coast", -12.00, 11.00),
		w("sw-africa", -28.00, 14.50),
		w("cape-agulhas", -35.50, 20.00),
		w("mozambique-s", -27.50, 34.00),
		w("mozambique-channel", -18.00, 41.50),
		w("tanzania-coast", -7.50, 40.50),
		w("madagascar-s", -27.00, 47.00),
		// Indian Ocean crossing and Australasia
		w("indian-mid", -12.00, 72.00),
		w("sunda-strait", -6.50, 104.80),
		w("lombok", -9.20, 115.80),
		w("nw-australia", -17.50, 117.50),
		w("sw-australia", -35.50, 114.00),
		w("bight", -37.50, 131.00),
		w("bass-strait", -39.80, 146.50),
		w("tasman-se", -36.50, 152.50),
		w("sydney-app", -34.10, 151.60),
		w("coral-s", -27.50, 154.50),
		w("nz-n", -35.50, 173.50),
		// South America Pacific
		w("ecuador-coast", -3.00, -81.80),
		w("peru-coast", -14.50, -76.80),
		w("chile-coast", -32.50, -72.20),
	}
}

// laneChains lists the lane edges as chains of waypoint names; each
// consecutive pair becomes a bidirectional edge.
func laneChains() [][]string {
	return [][]string{
		// North Sea / Baltic
		{"dover", "northsea-s", "northsea-mid", "skagen", "kattegat", "oresund", "bornholm", "baltic-mid", "gotland-e", "gulf-finland"},
		{"bornholm", "gdansk-bay"},
		{"skagen", "norway-s"},
		// Channel / Biscay / Iberia
		{"dover", "channel-mid", "ushant", "biscay", "finisterre", "lisbon-coast", "st-vincent", "gibraltar"},
		// Mediterranean spine and branches
		{"gibraltar", "alboran", "algiers-coast", "sardinia-s", "sicily-strait", "malta-e", "crete-s", "portsaid-app"},
		{"sardinia-s", "lion-gulf", "ligurian"},
		{"malta-e", "ionian", "aegean-s", "dardanelles", "marmara", "bosporus", "blacksea-mid"},
		// Red Sea / Gulf of Aden
		{"gulf-suez", "redsea-n", "redsea-mid", "bab-el-mandeb", "gulf-aden", "socotra"},
		{"socotra", "arabian-sea"},
		{"arabian-sea", "hormuz-app", "hormuz", "persian-gulf"},
		{"arabian-sea", "india-w"},
		{"india-w", "cape-comorin"},
		{"arabian-sea", "cape-comorin"},
		// Indian subcontinent / Bay of Bengal
		{"cape-comorin", "dondra", "bengal-mid", "bengal-n"},
		// To Malacca
		{"dondra", "malacca-n", "malacca-mid", "singapore-strait"},
		// South China Sea / East Asia
		{"singapore-strait", "scs-s", "scs-mid", "scs-n", "hk-app"},
		{"scs-n", "taiwan-strait", "east-china", "yellow-sea", "bohai"},
		{"scs-n", "luzon-strait"},
		{"east-china", "korea-strait"},
		{"east-china", "japan-s", "tokyo-app"},
		// North Pacific
		{"tokyo-app", "npac-w", "npac-mid", "npac-e", "juan-de-fuca"},
		{"npac-e", "calif-coast", "la-app"},
		{"la-app", "baja-s", "c-america-w", "panama-w"},
		// Panama / Caribbean / Gulf
		{"panama-w", "colon-app"}, // the canal itself (flagged below)
		{"colon-app", "caribbean-w", "caribbean-mid"},
		{"caribbean-w", "yucatan", "gulf-mex"},
		{"yucatan", "florida-strait", "bahamas-e", "hatteras", "ny-app"},
		// North Atlantic
		{"ny-app", "natl-w", "natl-mid", "natl-e", "ushant"},
		{"natl-e", "biscay"},
		{"natl-mid", "azores", "st-vincent"},
		// Atlantic south
		{"st-vincent", "canaries", "cape-verde", "equator-atl", "recife", "cabo-frio", "rio-plata"},
		{"equator-atl", "guinea-gulf", "angola-coast", "sw-africa", "cape-agulhas"},
		{"cape-verde", "guinea-gulf"},
		// Africa east and Indian Ocean
		{"cape-agulhas", "mozambique-s", "mozambique-channel", "tanzania-coast"},
		{"tanzania-coast", "gulf-aden"},
		{"cape-agulhas", "madagascar-s", "indian-mid"},
		{"indian-mid", "dondra"},
		{"indian-mid", "sunda-strait"},
		{"indian-mid", "nw-australia"},
		// Australasia
		{"sunda-strait", "lombok", "nw-australia"},
		{"sunda-strait", "singapore-strait"},
		{"nw-australia", "sw-australia", "bight", "bass-strait", "tasman-se", "sydney-app", "coral-s"},
		{"tasman-se", "nz-n"},
		{"coral-s", "nz-n"},
		{"lombok", "coral-s"}, // northern route to the Coral Sea
		// South America Pacific coast
		{"panama-w", "ecuador-coast", "peru-coast", "chile-coast"},
		// Caribbean to South Atlantic
		{"caribbean-mid", "equator-atl"},
	}
}

// canalCrossing reports which canal (if any) an edge between two positions
// transits. A canal is modelled as an isthmus line inside a bounding
// region: any edge whose endpoints fall on opposite sides of the line while
// both lie inside the region must pass through the canal. This catches both
// the explicit lane edge across the canal and port-attachment edges of
// ports sitting at the canal mouths (Suez, Port Said, Colón, Balboa), so a
// blockage cannot be bypassed through a port node.
func canalCrossing(a, b geo.LatLng) Canal {
	type isthmus struct {
		canal  Canal
		region geo.BBox
		// side returns which bank a point is on.
		side func(geo.LatLng) int
	}
	isthmuses := []isthmus{
		{
			canal:  SuezCanal,
			region: geo.BBox{MinLat: 26.5, MinLng: 28.0, MaxLat: 33.5, MaxLng: 36.5},
			side: func(p geo.LatLng) int {
				if p.Lat > 30.05 { // Mediterranean side
					return 0
				}
				return 1 // Red Sea side
			},
		},
		{
			canal:  PanamaCanal,
			region: geo.BBox{MinLat: 6.5, MinLng: -81.5, MaxLat: 11.0, MaxLng: -78.0},
			side: func(p geo.LatLng) int {
				if p.Lat > 9.05 { // Caribbean side
					return 0
				}
				return 1 // Pacific side
			},
		},
	}
	for _, is := range isthmuses {
		if is.region.Contains(a) && is.region.Contains(b) && is.side(a) != is.side(b) {
			return is.canal
		}
	}
	return NoCanal
}

// landBarriers returns polylines traced along land interiors that
// port-attachment edges must not cross. They keep automatic port attachment
// from creating overland shortcuts (a port linking to a waypoint in another
// basin). Hand-authored lane chains are exempt — they are drawn along water
// by construction — as are the explicit canal transits.
func landBarriers() [][]geo.LatLng {
	line := func(pts ...[2]float64) []geo.LatLng {
		out := make([]geo.LatLng, len(pts))
		for i, p := range pts {
			out[i] = geo.LatLng{Lat: p[0], Lng: p[1]}
		}
		return out
	}
	return [][]geo.LatLng{
		// Central America north of the Panama canal.
		line([2]float64{30, -101}, [2]float64{22, -99}, [2]float64{18, -96},
			[2]float64{15.5, -92.5}, [2]float64{13, -87.5}, [2]float64{11, -85},
			[2]float64{10.2, -83.5}, [2]float64{9.6, -81.5}),
		// South America north-west, south of the canal.
		line([2]float64{8.6, -78.8}, [2]float64{7, -77}, [2]float64{4, -75}),
		// The Malay peninsula (blocks Bay of Bengal ↔ Gulf of Thailand
		// shortcuts that bypass the Singapore Strait).
		line([2]float64{13.5, 99.2}, [2]float64{10, 98.8}, [2]float64{7, 100.2},
			[2]float64{4.8, 101.6}),
		// The Peloponnese (Aegean ↔ Ionian separation).
		line([2]float64{39.5, 21.3}, [2]float64{37.6, 22.2}, [2]float64{36.9, 22.4}),
		// England and Wales (Irish Sea ports must round Land's End).
		line([2]float64{55.0, -2.0}, [2]float64{53.0, -3.3}, [2]float64{51.9, -3.6},
			[2]float64{51.5, -1.0}),
		// The Korean peninsula spine.
		line([2]float64{38.3, 126.9}, [2]float64{36.5, 127.5}, [2]float64{35.0, 128.5},
			[2]float64{34.3, 126.5}),
		// Central Honshu (Osaka-bay ports round the Kii peninsula).
		line([2]float64{35.8, 139.0}, [2]float64{34.4, 135.8}),
	}
}

// crossesLand reports whether the segment a-b crosses any land barrier.
func crossesLand(a, b geo.LatLng) bool {
	for _, barrier := range landBarriers() {
		for i := 0; i+1 < len(barrier); i++ {
			if geo.SegmentsIntersect(a, b, barrier[i], barrier[i+1]) {
				return true
			}
		}
	}
	return false
}

// NewLaneGraph builds the routing graph over the gazetteer: the waypoint
// lanes plus port attachment edges (each port links to its nearest
// waypoints).
func NewLaneGraph(gaz *ports.Gazetteer) (*LaneGraph, error) {
	wps := waypointTable()
	byName := make(map[string]int, len(wps))
	for i, w := range wps {
		if _, dup := byName[w.name]; dup {
			return nil, fmt.Errorf("sim: duplicate waypoint %q", w.name)
		}
		byName[w.name] = i
	}
	g := &LaneGraph{
		gaz:       gaz,
		waypoints: wps,
		adj:       make([][]laneEdge, len(wps)+gaz.Len()),
	}
	addEdge := func(a, b int) {
		pa, pb := g.nodePos(a), g.nodePos(b)
		d := geo.Haversine(pa, pb)
		canal := canalCrossing(pa, pb)
		g.adj[a] = append(g.adj[a], laneEdge{to: b, distM: d, canal: canal})
		g.adj[b] = append(g.adj[b], laneEdge{to: a, distM: d, canal: canal})
	}
	// The Suez canal lane edge connects portsaid-app to gulf-suez directly;
	// canal flags are derived geometrically by canalCrossing.
	for _, chain := range append(laneChains(), []string{"portsaid-app", "gulf-suez"}) {
		for i := 0; i+1 < len(chain); i++ {
			a, ok := byName[chain[i]]
			if !ok {
				return nil, fmt.Errorf("sim: unknown waypoint %q in chain", chain[i])
			}
			b, ok := byName[chain[i+1]]
			if !ok {
				return nil, fmt.Errorf("sim: unknown waypoint %q in chain", chain[i+1])
			}
			addEdge(a, b)
		}
	}
	// Attach each port to its two nearest waypoints.
	for _, p := range gaz.All() {
		type cand struct {
			idx int
			d   float64
		}
		cands := make([]cand, len(wps))
		for i, w := range wps {
			cands[i] = cand{i, geo.Haversine(p.Pos, w.pos)}
		}
		sort.Slice(cands, func(i, j int) bool { return cands[i].d < cands[j].d })
		portNode := len(wps) + int(p.ID) - 1
		links := 0
		nearestLinked := -1.0
		for _, c := range cands {
			if links >= 2 || (links >= 1 && c.d > 2.5*nearestLinked+500e3) {
				break
			}
			if crossesLand(p.Pos, wps[c.idx].pos) {
				continue
			}
			addEdge(portNode, c.idx)
			if links == 0 {
				nearestLinked = c.d
			}
			links++
		}
		if links == 0 {
			// Connectivity fallback: link to the nearest waypoint even if
			// the straight segment grazes a barrier.
			addEdge(portNode, cands[0].idx)
		}
	}
	return g, nil
}

// nodePos returns the geographic position of a graph node.
func (g *LaneGraph) nodePos(node int) geo.LatLng {
	if node < len(g.waypoints) {
		return g.waypoints[node].pos
	}
	p, _ := g.gaz.ByID(model.PortID(node - len(g.waypoints) + 1))
	return p.Pos
}

func (g *LaneGraph) portNode(id model.PortID) int {
	return len(g.waypoints) + int(id) - 1
}

// Route is a planned port-to-port voyage track.
type Route struct {
	Origin, Dest model.PortID
	Points       []geo.LatLng // polyline from origin port to destination port
	DistM        float64      // total length in metres
	Canals       []Canal      // canals transited, in order
}

// pqItem is a priority-queue entry for Dijkstra.
type pqItem struct {
	node int
	dist float64
}

type pq []pqItem

func (q pq) Len() int           { return len(q) }
func (q pq) Less(i, j int) bool { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x any)        { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() any          { old := *q; n := len(old); x := old[n-1]; *q = old[:n-1]; return x }

// Plan computes the shortest lane route between two ports. Canals listed in
// blocked are closed (the Suez-blockage scenario). It returns an error if no
// route exists or the ports are unknown.
func (g *LaneGraph) Plan(origin, dest model.PortID, blocked ...Canal) (Route, error) {
	if _, ok := g.gaz.ByID(origin); !ok {
		return Route{}, fmt.Errorf("sim: unknown origin port %d", origin)
	}
	if _, ok := g.gaz.ByID(dest); !ok {
		return Route{}, fmt.Errorf("sim: unknown destination port %d", dest)
	}
	isBlocked := func(c Canal) bool {
		for _, b := range blocked {
			if b == c && c != NoCanal {
				return true
			}
		}
		return false
	}
	src, dst := g.portNode(origin), g.portNode(dest)
	const inf = math.MaxFloat64
	dist := make([]float64, len(g.adj))
	prev := make([]int, len(g.adj))
	for i := range dist {
		dist[i] = inf
		prev[i] = -1
	}
	dist[src] = 0
	q := &pq{{node: src}}
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		if it.dist > dist[it.node] {
			continue
		}
		if it.node == dst {
			break
		}
		// Ports are voyage endpoints, never through-nodes: a lane does not
		// route through another port's harbour.
		if it.node != src && it.node >= len(g.waypoints) {
			continue
		}
		for _, e := range g.adj[it.node] {
			if isBlocked(e.canal) {
				continue
			}
			nd := it.dist + e.distM
			if nd < dist[e.to] {
				dist[e.to] = nd
				prev[e.to] = it.node
				heap.Push(q, pqItem{node: e.to, dist: nd})
			}
		}
	}
	if dist[dst] == inf {
		return Route{}, fmt.Errorf("sim: no route from port %d to port %d", origin, dest)
	}
	// Reconstruct the node path.
	var nodes []int
	for n := dst; n != -1; n = prev[n] {
		nodes = append(nodes, n)
	}
	for i, j := 0, len(nodes)-1; i < j; i, j = i+1, j-1 {
		nodes[i], nodes[j] = nodes[j], nodes[i]
	}
	r := Route{Origin: origin, Dest: dest, DistM: dist[dst]}
	r.Points = make([]geo.LatLng, len(nodes))
	for i, n := range nodes {
		r.Points[i] = g.nodePos(n)
	}
	// Record canal transits in order.
	for i := 0; i+1 < len(nodes); i++ {
		for _, e := range g.adj[nodes[i]] {
			if e.to == nodes[i+1] && e.canal != NoCanal {
				r.Canals = append(r.Canals, e.canal)
				break
			}
		}
	}
	return r, nil
}

// Transits reports whether the route passes through the given canal.
func (r Route) Transits(c Canal) bool {
	for _, t := range r.Canals {
		if t == c {
			return true
		}
	}
	return false
}

// PointAtDistance returns the position at the given distance (metres) from
// the route start, interpolating along great-circle segments. Distances
// beyond the route length clamp to the endpoints.
func (r Route) PointAtDistance(distM float64) geo.LatLng {
	if len(r.Points) == 0 {
		return geo.LatLng{}
	}
	if distM <= 0 {
		return r.Points[0]
	}
	remaining := distM
	for i := 0; i+1 < len(r.Points); i++ {
		seg := geo.Haversine(r.Points[i], r.Points[i+1])
		if remaining <= seg {
			if seg == 0 {
				return r.Points[i]
			}
			return geo.Interpolate(r.Points[i], r.Points[i+1], remaining/seg)
		}
		remaining -= seg
	}
	return r.Points[len(r.Points)-1]
}

// BearingAtDistance returns the course over ground at the given distance
// from the route start.
func (r Route) BearingAtDistance(distM float64) float64 {
	if len(r.Points) < 2 {
		return 0
	}
	remaining := distM
	for i := 0; i+1 < len(r.Points); i++ {
		seg := geo.Haversine(r.Points[i], r.Points[i+1])
		if remaining <= seg || i+2 == len(r.Points) {
			f := 0.0
			if seg > 0 {
				f = math.Min(math.Max(remaining/seg, 0), 0.999)
			}
			at := geo.Interpolate(r.Points[i], r.Points[i+1], f)
			return geo.InitialBearing(at, r.Points[i+1])
		}
		remaining -= seg
	}
	n := len(r.Points)
	return geo.InitialBearing(r.Points[n-2], r.Points[n-1])
}
