// Package feed reads and writes AIS archive files in the common
// "timestamped NMEA" form used by AIS data providers: one sentence per
// line, prefixed with the Unix receive timestamp and a tab:
//
//	1641038400\t!AIVDM,1,1,,A,15M67FC000G?ufbE`FepT@3n00Sa,0*5B
//
// Multi-sentence messages (type 5) occupy consecutive lines sharing a
// timestamp. The reader reassembles and decodes messages, converting them
// to pipeline records; lines that fail checksum or decoding are counted and
// skipped, as a production ingest does.
package feed

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"github.com/patternsoflife/pol/internal/ais"
	"github.com/patternsoflife/pol/internal/geo"
	"github.com/patternsoflife/pol/internal/model"
)

// Writer emits timestamped NMEA lines.
type Writer struct {
	w   *bufio.Writer
	seq int
	// Lines counts emitted NMEA lines.
	Lines int64
}

// NewWriter wraps an io.Writer.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 1<<20)}
}

// WritePosition encodes and writes one position report.
func (w *Writer) WritePosition(rec model.PositionRecord) error {
	lines, err := ais.EncodePosition(ais.PositionReport{
		Type:      ais.TypePositionA1,
		MMSI:      rec.MMSI,
		Status:    rec.Status,
		Lon:       rec.Pos.Lng,
		Lat:       rec.Pos.Lat,
		SOG:       rec.SOG,
		COG:       rec.COG,
		Heading:   rec.Heading,
		Timestamp: int(rec.Time % 60),
	})
	if err != nil {
		return fmt.Errorf("feed: encode position: %w", err)
	}
	return w.writeLines(rec.Time, lines)
}

// WriteStatic encodes and writes one static report.
func (w *Writer) WriteStatic(v model.VesselInfo, atUnix int64) error {
	w.seq = (w.seq + 1) % 10
	lines, err := ais.EncodeStatic(ais.StaticReport{
		MMSI:     v.MMSI,
		IMO:      v.IMO,
		CallSign: v.CallSign,
		Name:     v.Name,
		ShipType: v.Type.AISShipType(),
		DimBow:   v.LengthM / 2,
		DimStern: v.LengthM - v.LengthM/2,
		DimPort:  v.BeamM / 2,
		DimStarb: v.BeamM - v.BeamM/2,
		Draught:  float64(v.GRT) / 12000,
	}, w.seq)
	if err != nil {
		return fmt.Errorf("feed: encode static: %w", err)
	}
	return w.writeLines(atUnix, lines)
}

func (w *Writer) writeLines(ts int64, lines []string) error {
	for _, line := range lines {
		if _, err := fmt.Fprintf(w.w, "%d\t%s\n", ts, line); err != nil {
			return fmt.Errorf("feed: write: %w", err)
		}
		w.Lines++
	}
	return nil
}

// Flush flushes buffered output.
func (w *Writer) Flush() error { return w.w.Flush() }

// ReadStats reports the ingest quality counters of a Reader pass.
type ReadStats struct {
	Lines       int64 // input lines seen
	BadLines    int64 // unparseable line framing
	BadNMEA     int64 // checksum / sentence failures
	Positions   int64 // decoded position reports
	Statics     int64 // decoded static reports
	Unsupported int64 // valid messages of other types
}

// Reader decodes a timestamped NMEA archive.
type Reader struct {
	sc    *bufio.Scanner
	dec   *ais.Decoder
	stats ReadStats
	// pending static info discovered in the stream.
	statics map[uint32]ais.StaticReport
}

// NewReader wraps an io.Reader.
func NewReader(r io.Reader) *Reader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	return &Reader{
		sc:      sc,
		dec:     ais.NewDecoder(),
		statics: make(map[uint32]ais.StaticReport),
	}
}

// ItemKind discriminates the decoded feed elements surfaced by NextItem.
type ItemKind uint8

// Feed item kinds.
const (
	// ItemPosition: a decoded position report.
	ItemPosition ItemKind = iota + 1
	// ItemStatic: a decoded type-5 static & voyage report.
	ItemStatic
)

// Item is one decoded feed element: a position record or a static report,
// each carrying the line's receive timestamp. The live ingestion path
// consumes items so static reports are visible the moment they arrive
// instead of only after a full archive pass.
type Item struct {
	Kind   ItemKind
	Time   int64                // Unix receive timestamp of the line
	Pos    model.PositionRecord // when Kind == ItemPosition
	Static ais.StaticReport     // when Kind == ItemStatic
}

// NextItem returns the next decoded feed element — position or static —
// in stream order. It returns io.EOF at end of input. Static reports are
// additionally collected into the Statics map, preserving the archive
// reader behaviour.
func (r *Reader) NextItem() (Item, error) {
	for r.sc.Scan() {
		r.stats.Lines++
		line := r.sc.Text()
		tab := strings.IndexByte(line, '\t')
		if tab < 0 {
			r.stats.BadLines++
			continue
		}
		ts, err := strconv.ParseInt(line[:tab], 10, 64)
		if err != nil {
			r.stats.BadLines++
			continue
		}
		before := r.dec.BadSentence + r.dec.BadPayload
		m, ok := r.dec.Feed(line[tab+1:])
		if !ok {
			if r.dec.BadSentence+r.dec.BadPayload > before {
				r.stats.BadNMEA++
			}
			continue
		}
		switch m.Type {
		case ais.TypeStatic:
			r.stats.Statics++
			r.statics[m.Static.MMSI] = *m.Static
			return Item{Kind: ItemStatic, Time: ts, Static: *m.Static}, nil
		case ais.TypeBaseStation, ais.TypeStaticB:
			// Decodable but not consumed by the pipeline.
			r.stats.Unsupported++
		default:
			p := m.Position
			r.stats.Positions++
			return Item{Kind: ItemPosition, Time: ts, Pos: model.PositionRecord{
				MMSI:    p.MMSI,
				Time:    ts,
				Pos:     geo.LatLng{Lat: p.Lat, Lng: p.Lon},
				SOG:     p.SOG,
				COG:     p.COG,
				Heading: p.Heading,
				Status:  p.Status,
			}}, nil
		}
	}
	if err := r.sc.Err(); err != nil {
		return Item{}, fmt.Errorf("feed: scan: %w", err)
	}
	return Item{}, io.EOF
}

// Next returns the next decoded position record. It returns io.EOF at end
// of input. Static reports encountered are collected (see Statics) and do
// not surface as records.
func (r *Reader) Next() (model.PositionRecord, error) {
	for {
		it, err := r.NextItem()
		if err != nil {
			return model.PositionRecord{}, err
		}
		if it.Kind == ItemPosition {
			return it.Pos, nil
		}
	}
}

// ReadAll drains the reader into a slice.
func (r *Reader) ReadAll() ([]model.PositionRecord, error) {
	var out []model.PositionRecord
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}

// Stats returns the ingest counters accumulated so far.
func (r *Reader) Stats() ReadStats { return r.stats }

// Statics returns the static reports seen so far, keyed by MMSI.
func (r *Reader) Statics() map[uint32]ais.StaticReport { return r.statics }

// StaticsAsVesselInfo converts collected static reports into the vessel
// static inventory the pipeline joins against. The market segment is
// derived from the AIS ship type (AIS cannot distinguish container/bulk
// from general cargo; they map to VesselCargo).
func (r *Reader) StaticsAsVesselInfo() map[uint32]model.VesselInfo {
	out := make(map[uint32]model.VesselInfo, len(r.statics))
	for mmsi, s := range r.statics {
		out[mmsi] = StaticAsVesselInfo(s)
	}
	return out
}

// StaticAsVesselInfo converts one wire static report into the vessel
// static-inventory entry the pipeline joins against — the per-item form
// used by the live ingestion path.
func StaticAsVesselInfo(s ais.StaticReport) model.VesselInfo {
	vt := model.VesselUnknown
	switch s.ShipType.Category() {
	case ais.ShipCategoryCargo:
		vt = model.VesselCargo
	case ais.ShipCategoryTanker:
		vt = model.VesselTanker
	case ais.ShipCategoryPassenger:
		vt = model.VesselPassenger
	}
	return model.VesselInfo{
		MMSI:     s.MMSI,
		IMO:      s.IMO,
		Name:     s.Name,
		CallSign: s.CallSign,
		Type:     vt,
		// The wire carries no tonnage; estimate from dimensions so the
		// commercial filter (> 5000 GRT) behaves sensibly: gross
		// tonnage scales with enclosed volume ≈ L·B·depth, and depth
		// tracks beam, giving GT ≈ 3.5·L·B for merchant hull forms.
		GRT:     s.Length() * s.Beam() * 7 / 2,
		LengthM: s.Length(),
		BeamM:   s.Beam(),
		ClassA:  true,
	}
}
