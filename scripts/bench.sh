#!/bin/sh
# Benchmark suite — regenerates the committed machine-readable benchmark
# results and prints the headline go-test benchmarks. Run from the
# repository root:
#
#   ./scripts/bench.sh            # writes BENCH_PR10.json
#   ./scripts/bench.sh results.json
#
# The report has two parts: the polbench micro-benchmark suite (build,
# publish, queries, shuffle, distributed build, replica catch-up, tracing
# overhead, segment cold-start and resident-set footprints) and an
# open-loop polload SLO run against a polserve snapshot, merged in under
# the "slo" key.
set -e

out="${1:-BENCH_PR10.json}"

echo "== polbench micro-benchmark suite → $out =="
go run ./cmd/polbench -json "$out" -vessels 30 -days 15

echo "== polload SLO run (open-loop against polserve) → $out =="
tmp="$(mktemp -d)"
pid=""
cleanup() {
	[ -n "$pid" ] && kill "$pid" 2>/dev/null
	rm -rf "$tmp"
}
trap cleanup EXIT
go build -o "$tmp" ./cmd/polbuild ./cmd/polserve ./cmd/polload
"$tmp/polbuild" -synthetic -vessels 30 -days 15 -out "$tmp/fleet.polinv"
addr="127.0.0.1:$((18600 + $$ % 100))"
"$tmp/polserve" -inv "$tmp/fleet.polinv" -addr "$addr" >"$tmp/serve.log" 2>&1 &
pid=$!
sleep 0.5
"$tmp/polload" -targets "http://$addr" -rate 300 -duration 10s -seed 1 \
	-merge-bench "$out"

echo "== headline benchmarks (publish COW vs clone, shuffle allocs) =="
go test -run='^$' -bench='PublishLargeInventory|PublishDelta|ShuffleAllocs' -benchmem ./... 2>&1 | grep -E 'Benchmark|^ok|^PASS'
