package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"runtime"
	"sync"
	"time"

	"github.com/patternsoflife/pol/internal/dataflow"
	"github.com/patternsoflife/pol/internal/fault"
	"github.com/patternsoflife/pol/internal/feed"
	"github.com/patternsoflife/pol/internal/inventory"
	"github.com/patternsoflife/pol/internal/model"
	"github.com/patternsoflife/pol/internal/obs"
	"github.com/patternsoflife/pol/internal/obs/trace"
	"github.com/patternsoflife/pol/internal/pipeline"
	"github.com/patternsoflife/pol/internal/ports"
	"github.com/patternsoflife/pol/internal/sim"
)

// ErrKilled reports that the worker terminated itself through the
// cluster.worker.kill failpoint (fault-injection for re-queue tests).
var ErrKilled = errors.New("cluster: worker killed by failpoint")

// Failpoints evaluated by a worker, armed through the shared
// internal/fault registry (POL_FAILPOINTS or WorkerConfig.Faults). Kill
// makes the worker vanish mid-task after one heartbeat; Execute replaces
// a task execution with an injected error. The legacy flag syntaxes map
// onto fault specs: "kill-task=N" ≈ "cluster.worker.kill=error*1@N-1",
// "fail-tasks=N" ≈ "cluster.worker.execute=error*N".
const (
	FPWorkerKill    = "cluster.worker.kill"
	FPWorkerExecute = "cluster.worker.execute"
)

// WorkerConfig parameterizes one worker process.
type WorkerConfig struct {
	// Coordinator is the TCP address to dial.
	Coordinator string
	// Name identifies the worker in logs and results (default host:pid).
	Name string
	// Parallelism is the dataflow pool width per task (default GOMAXPROCS).
	Parallelism int
	// HeartbeatEvery is the liveness interval while executing a task
	// (default 2s; keep it well under the coordinator's TaskTimeout).
	HeartbeatEvery time.Duration
	// DialRetryFor keeps re-dialing a not-yet-listening coordinator for
	// this long (default 10s) — workers may start first.
	DialRetryFor time.Duration
	// MaxFrameBytes caps one protocol frame (default DefaultMaxFrameBytes).
	MaxFrameBytes int
	// ShuffleListen is the address the worker's peer-shuffle listener
	// binds (default ":0" — any interface, ephemeral port). Peers of a
	// peer-shuffle archive job stream bucket frames here.
	ShuffleListen string
	// ShuffleAdvertise overrides the shuffle address announced to the
	// coordinator (default: the listener's port joined with the local IP
	// of the coordinator connection — right whenever peers can route the
	// same way the coordinator is reached).
	ShuffleAdvertise string
	// WriteTimeout bounds one peer-shuffle frame write (default 10s); a
	// blocked peer drops the connection and the sender replays on
	// reconnect.
	WriteTimeout time.Duration
	// Faults is the failpoint registry consulted at FPWorkerKill and
	// FPWorkerExecute (default: the process-wide registry armed from
	// POL_FAILPOINTS).
	Faults *fault.Registry
	// Obs receives worker metrics (default obs.Default()).
	Obs *obs.Registry
	// Tracer, when non-nil, records one execution span per task, joining
	// the coordinator's job trace through Task.TraceParent (tasks without
	// one start fresh worker-local traces). Pipeline stage spans nest
	// under it.
	Tracer *trace.Tracer
	// Logf, when non-nil, receives worker progress lines.
	Logf func(format string, args ...any)

	// resultDelay, when non-nil, delays each result send (test hook for
	// shuffled completion order and straggler scenarios).
	resultDelay func(t Task) time.Duration
}

func (c WorkerConfig) withDefaults() WorkerConfig {
	if c.Name == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		c.Name = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	if c.Parallelism < 1 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = 2 * time.Second
	}
	if c.DialRetryFor <= 0 {
		c.DialRetryFor = 10 * time.Second
	}
	if c.MaxFrameBytes <= 0 {
		c.MaxFrameBytes = DefaultMaxFrameBytes
	}
	if c.ShuffleListen == "" {
		c.ShuffleListen = ":0"
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.Faults == nil {
		c.Faults = fault.Default()
	}
	return c
}

// worker is the run state of one RunWorker call.
type worker struct {
	cfg     WorkerConfig
	conn    net.Conn
	writeMu sync.Mutex // heartbeat goroutine vs result sends
	metrics *workerMetrics
	portIdx *ports.Index
	statics map[uint32]model.VesselInfo // broadcast vessel static inventory
	shuffle *shuffleState               // peer-shuffle listener + reassembly
	runCtx  context.Context             // cancelled when the connection dies

	simSpec SimSpec        // cached fleet spec…
	sim     *sim.Simulator // …and its simulator (lane graph reuse)
}

// RunWorker connects to the coordinator and executes tasks until the
// coordinator sends a shutdown (returns nil), the connection is lost, the
// context is cancelled, or a kill failpoint fires (returns ErrKilled).
func RunWorker(ctx context.Context, cfg WorkerConfig) error {
	cfg = cfg.withDefaults()
	w := &worker{
		cfg:     cfg,
		metrics: newWorkerMetrics(cfg.Obs),
		portIdx: ports.NewIndex(ports.Default(), ports.IndexResolution),
	}
	conn, err := w.dial(ctx)
	if err != nil {
		return err
	}
	w.conn = conn
	defer conn.Close()

	// runCtx cancels running pipelines the moment the connection dies or
	// the caller's context is cancelled. Set before the shuffle starts:
	// the reduce loop reads it.
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	w.runCtx = runCtx

	sh, err := newShuffleState(w)
	if err != nil {
		return err
	}
	w.shuffle = sh
	defer sh.shutdown()
	sh.start()
	addr := sh.resolveAdvertise(conn)
	if err := w.send(&envelope{Type: msgHello, Hello: &helloMsg{Name: cfg.Name, Procs: cfg.Parallelism, ShuffleAddr: addr}}); err != nil {
		return err
	}
	w.logf("connected to %s as %s (shuffle %s)", cfg.Coordinator, cfg.Name, addr)

	frames := make(chan *envelope, 16)
	readErr := make(chan error, 1)
	go func() {
		in := countingReader{r: conn, c: w.metrics.bytesIn}
		for {
			env, n, err := readFrame(in, cfg.MaxFrameBytes)
			if err != nil {
				readErr <- err
				cancel()
				close(frames)
				return
			}
			if env.Type == msgTask && env.Task != nil && len(env.Task.Records) > 0 {
				// A reduce task carrying records is the coordinator-path
				// shuffle delivering a bucket.
				w.metrics.shuffleCoordRecv.Add(int64(n))
			}
			frames <- env
		}
	}()

	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case env, ok := <-frames:
			if !ok {
				err := <-readErr
				if err == io.EOF {
					return nil // coordinator closed us out
				}
				return fmt.Errorf("cluster: connection lost: %w", err)
			}
			switch env.Type {
			case msgShutdown:
				w.logf("shutdown received")
				return nil
			case msgStatics:
				if env.Statics != nil {
					w.statics = env.Statics.Statics
					w.logf("statics broadcast: %d vessels", len(w.statics))
				}
			case msgRoster:
				if env.Roster != nil {
					w.shuffle.setRoster(env.Roster)
				}
			case msgTask:
				if env.Task == nil {
					continue
				}
				done, err := w.handleTask(runCtx, *env.Task)
				if err != nil {
					return err
				}
				if done {
					return ErrKilled
				}
			}
		}
	}
}

// dial connects with retries, tolerating a coordinator that starts late.
func (w *worker) dial(ctx context.Context) (net.Conn, error) {
	deadline := time.Now().Add(w.cfg.DialRetryFor)
	for {
		conn, err := net.DialTimeout("tcp", w.cfg.Coordinator, time.Second)
		if err == nil {
			return conn, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("cluster: dial %s: %w", w.cfg.Coordinator, err)
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(100 * time.Millisecond):
		}
	}
}

func (w *worker) logf(format string, args ...any) {
	if w.cfg.Logf != nil {
		w.cfg.Logf(format, args...)
	}
}

// send writes one frame under the write mutex (heartbeats interleave with
// results on the same connection).
func (w *worker) send(env *envelope) error {
	w.writeMu.Lock()
	defer w.writeMu.Unlock()
	n, err := writeFrame(countingWriter{w: w.conn, c: w.metrics.bytesOut}, env)
	if err == nil && env.Type == msgResult && env.Result != nil && len(env.Result.BucketBlocks) > 0 {
		// A scan result carrying bucket blocks is the coordinator-path
		// shuffle moving map outputs up.
		w.metrics.shuffleCoordSent.Add(int64(n))
	}
	return err
}

// handleTask executes one task and reports its result; killed reports that
// the kill failpoint fired and the worker must exit.
func (w *worker) handleTask(ctx context.Context, t Task) (killed bool, fatal error) {
	w.logf("task %d (%s) attempt %d", t.ID, t.Kind, t.Attempt)
	if err := w.cfg.Faults.Hit(FPWorkerKill); err != nil {
		// Die mid-task: prove liveness once, then vanish without a result.
		w.send(&envelope{Type: msgHeartbeat, Heartbeat: &heartbeatMsg{TaskID: t.ID}})
		w.conn.Close()
		w.logf("failpoint: killed on task %d", t.ID)
		return true, nil
	}

	// Heartbeat for the whole execution.
	hbStop := make(chan struct{})
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		tick := time.NewTicker(w.cfg.HeartbeatEvery)
		defer tick.Stop()
		for {
			select {
			case <-hbStop:
				return
			case <-ctx.Done():
				return
			case <-tick.C:
				w.metrics.heartbeats.Inc()
				if err := w.send(&envelope{Type: msgHeartbeat, Heartbeat: &heartbeatMsg{TaskID: t.ID}}); err != nil {
					return
				}
			}
		}
	}()

	// The execution span joins the coordinator's job trace via the
	// traceparent stamped into the task frame; pipeline stage spans nest
	// under it through the context.
	parent, _ := trace.ParseTraceparent(t.TraceParent)
	span := w.cfg.Tracer.StartRemote("cluster.task."+t.Kind.String(), parent)
	span.SetAttr("task", fmt.Sprint(t.ID))
	span.SetAttr("attempt", fmt.Sprint(t.Attempt))
	if span != nil {
		w.logf("task %d trace %s", t.ID, span.Trace)
	}
	res := w.execute(trace.ContextWith(ctx, span), t)
	if res.Err != "" {
		span.SetAttr("error", res.Err)
		span.MarkError()
	}
	span.Finish()
	close(hbStop)
	hbWG.Wait()
	if res.Err == "" {
		w.metrics.tasksOK.Inc()
	} else {
		w.metrics.tasksErr.Inc()
		w.logf("task %d failed: %s", t.ID, res.Err)
	}
	if w.cfg.resultDelay != nil {
		if d := w.cfg.resultDelay(t); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
			}
		}
	}
	if err := w.send(&envelope{Type: msgResult, Result: res}); err != nil {
		return false, fmt.Errorf("cluster: send result %d: %w", t.ID, err)
	}
	return false, nil
}

// execute runs one task, never panicking the worker loop on bad input.
func (w *worker) execute(ctx context.Context, t Task) *TaskResult {
	res := &TaskResult{ID: t.ID, Attempt: t.Attempt, Worker: w.cfg.Name}
	if err := w.cfg.Faults.Hit(FPWorkerExecute); err != nil {
		res.Err = err.Error()
		return res
	}
	var err error
	switch t.Kind {
	case TaskSimBuild:
		err = w.runSimBuild(ctx, t, res)
	case TaskScan:
		err = w.runScan(t, res)
	case TaskReduceBuild:
		err = w.runReduceBuild(ctx, t, res)
	default:
		err = fmt.Errorf("unknown task kind %d", t.Kind)
	}
	if err != nil {
		res.Err = err.Error()
	}
	return res
}

// simulator returns a cached simulator for the spec; rebuilding the lane
// graph per task would dominate small tasks.
func (w *worker) simulator(spec SimSpec) (*sim.Simulator, error) {
	if w.sim != nil && w.simSpec == spec {
		return w.sim, nil
	}
	s, err := sim.New(spec.Config(), ports.Default())
	if err != nil {
		return nil, err
	}
	w.sim, w.simSpec = s, spec
	return s, nil
}

// runSimBuild regenerates the task's vessel range from the shared seed and
// runs the full pipeline over it. The fleet static index covers the whole
// fleet, exactly as in a single-process synthetic build.
func (w *worker) runSimBuild(ctx context.Context, t Task, res *TaskResult) error {
	s, err := w.simulator(t.Sim)
	if err != nil {
		return err
	}
	if t.VesselLo < 0 || t.VesselHi > len(s.Fleet().Vessels) || t.VesselLo >= t.VesselHi {
		return fmt.Errorf("bad vessel range [%d,%d) of %d", t.VesselLo, t.VesselHi, len(s.Fleet().Vessels))
	}
	dctx := dataflow.NewContextWith(ctx, w.cfg.Parallelism)
	records := dataflow.Generate(dctx, t.VesselHi-t.VesselLo, func(part int) []model.PositionRecord {
		recs, _ := s.VesselTrack(t.VesselLo + part)
		return recs
	})
	return w.runPipeline(records, s.Fleet().StaticIndex(), t, res)
}

// runScan decodes one archive section, returning statics and positions
// bucketed by vessel hash — the map side of the archive shuffle.
func (w *worker) runScan(t Task, res *TaskResult) error {
	if t.Buckets < 1 {
		return fmt.Errorf("scan task %d without buckets", t.ID)
	}
	r, closer, err := feed.OpenSection(t.Section)
	if err != nil {
		return err
	}
	defer closer.Close()
	buckets := make([][]model.PositionRecord, t.Buckets)
	for {
		it, err := r.NextItem()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if it.Kind == feed.ItemPosition {
			b := dataflow.HashKey(it.Pos.MMSI) % uint64(t.Buckets)
			buckets[b] = append(buckets[b], it.Pos)
		}
	}
	res.Feed = r.Stats()
	res.SectionIndex = t.Section.Index
	statics := r.StaticsAsVesselInfo()
	if !t.PeerShuffle {
		res.Statics = statics
		res.BucketBlocks = buckets
		return nil
	}
	// Peer path: the bucket blocks stream straight to their owners (the
	// bucket's statics riding the Last frame); the result reports only the
	// per-bucket record counts. Frames for buckets with no assigned owner
	// yet are parked and re-delivered when the roster arrives.
	counts := make([]int, t.Buckets)
	epoch := w.shuffle.currentEpoch()
	for b, recs := range buckets {
		counts[b] = len(recs)
		frames, err := bucketFrames(w.cfg.Name, epoch, t, b, recs, bucketStatics(statics, b, t.Buckets))
		if err != nil {
			return err
		}
		for _, f := range frames {
			w.shuffle.emit(f)
		}
	}
	res.BucketRecords = counts
	return nil
}

// reduceOwnedBucket folds one owned bucket whose shuffle inputs are all
// here — the overlap path: it runs while other sections are still
// scanning. The result reports under the bucket's stable task ID, so a
// straggling old owner's completion after a reassignment is dropped as a
// duplicate by the coordinator.
func (w *worker) reduceOwnedBucket(bucket int) {
	sh := w.shuffle
	records, statics, as, ok := sh.assemble(bucket)
	if !ok {
		return
	}
	sh.mu.Lock()
	resolution := sh.roster.Resolution
	traceParent := sh.roster.TraceParent
	epoch := sh.roster.Epoch
	sh.mu.Unlock()
	w.logf("reduce bucket %d: %d records, %d vessels (epoch %d)", bucket, len(records), len(statics), epoch)
	w.metrics.reduceInflight.Add(1)
	defer w.metrics.reduceInflight.Add(-1)

	res := &TaskResult{ID: as.TaskID, Attempt: epoch, Worker: w.cfg.Name}
	parent, _ := trace.ParseTraceparent(traceParent)
	span := w.cfg.Tracer.StartRemote("cluster.task.reduce-build", parent)
	span.SetAttr("task", fmt.Sprint(as.TaskID))
	span.SetAttr("bucket", fmt.Sprint(bucket))
	ctx := w.runCtx
	if ctx == nil {
		ctx = context.Background()
	}
	if err := w.cfg.Faults.Hit(FPWorkerExecute); err != nil {
		res.Err = err.Error()
	} else {
		t := Task{ID: as.TaskID, Kind: TaskReduceBuild, Resolution: resolution}
		dctx := dataflow.NewContextWith(trace.ContextWith(ctx, span), w.cfg.Parallelism)
		ds := dataflow.Parallelize(dctx, records, w.cfg.Parallelism*4)
		if err := w.runPipeline(ds, statics, t, res); err != nil {
			res.Err = err.Error()
		}
	}
	if res.Err != "" {
		span.SetAttr("error", res.Err)
		span.MarkError()
		w.metrics.tasksErr.Inc()
		w.logf("reduce bucket %d failed: %s", bucket, res.Err)
	} else {
		w.metrics.tasksOK.Inc()
	}
	span.Finish()
	sh.markResult(bucket, res.Err != "")
	if err := w.send(&envelope{Type: msgResult, Result: res}); err != nil {
		w.logf("send reduce result %d: %v", as.TaskID, err)
	}
}

// runReduceBuild runs the full pipeline over one vessel-complete record
// bucket using the broadcast statics.
func (w *worker) runReduceBuild(ctx context.Context, t Task, res *TaskResult) error {
	dctx := dataflow.NewContextWith(ctx, w.cfg.Parallelism)
	records := dataflow.Parallelize(dctx, t.Records, w.cfg.Parallelism*4)
	return w.runPipeline(records, w.statics, t, res)
}

// runPipeline executes the inventory pipeline and marshals the partial.
// Reduce tasks run with a single pipeline partition: a bucket's summaries
// then fold in one canonical pass regardless of worker parallelism, which
// is what lets the coordinator's ordered merge reproduce a single-process
// build bit for bit (parallelism across buckets, determinism within one).
func (w *worker) runPipeline(records *dataflow.Dataset[model.PositionRecord], static map[uint32]model.VesselInfo, t Task, res *TaskResult) error {
	parts := 0
	if t.Kind == TaskReduceBuild {
		parts = 1
	}
	out, err := pipeline.Run(records, static, w.portIdx, pipeline.Options{
		Resolution:  t.Resolution,
		Partitions:  parts,
		Description: fmt.Sprintf("cluster task %d (%s)", t.ID, t.Kind),
		Obs:         w.cfg.Obs,
		Tracer:      w.cfg.Tracer,
	})
	if err != nil {
		return err
	}
	blob, err := inventory.Marshal(out.Inventory)
	if err != nil {
		return err
	}
	res.Inventory = blob
	res.Stats = out.Stats
	return nil
}
