package stats

import (
	"math/rand"
	"testing"
)

func TestTopNExactWithinCapacity(t *testing.T) {
	s := NewTopN(10)
	for i := 0; i < 5; i++ {
		for j := 0; j <= i; j++ {
			s.Add(uint64(i))
		}
	}
	top := s.Top(3)
	if len(top) != 3 {
		t.Fatalf("want 3 entries, got %d", len(top))
	}
	if top[0].Key != 4 || top[0].Count != 5 || top[0].Error != 0 {
		t.Errorf("top entry %+v, want key 4 count 5 error 0", top[0])
	}
	if top[1].Key != 3 || top[2].Key != 2 {
		t.Errorf("ranking wrong: %+v", top)
	}
}

func TestTopNHeavyHitterGuarantee(t *testing.T) {
	// With capacity k, any key with frequency > total/k must be present.
	s := NewTopN(8)
	rng := rand.New(rand.NewSource(13))
	const total = 100000
	for i := 0; i < total; i++ {
		r := rng.Float64()
		switch {
		case r < 0.4:
			s.Add(1) // 40%
		case r < 0.7:
			s.Add(2) // 30%
		case r < 0.85:
			s.Add(3) // 15%
		default:
			s.Add(uint64(4 + rng.Intn(1000))) // long tail
		}
	}
	top := s.Top(3)
	keys := map[uint64]bool{}
	for _, e := range top {
		keys[e.Key] = true
	}
	for _, k := range []uint64{1, 2, 3} {
		if !keys[k] {
			t.Errorf("heavy hitter %d missing from top-3: %+v", k, top)
		}
	}
	if top[0].Key != 1 || top[1].Key != 2 || top[2].Key != 3 {
		t.Errorf("heavy hitters misranked: %+v", top)
	}
}

func TestTopNCountUpperBound(t *testing.T) {
	s := NewTopN(4)
	truth := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(14))
	for i := 0; i < 50000; i++ {
		k := uint64(rng.Intn(100))
		truth[k]++
		s.Add(k)
	}
	for _, e := range s.Entries() {
		if e.Count < truth[e.Key] {
			t.Errorf("key %d: estimated %d below true %d (must be upper bound)", e.Key, e.Count, truth[e.Key])
		}
		if e.Count-e.Error > truth[e.Key] {
			t.Errorf("key %d: count-error %d exceeds true %d", e.Key, e.Count-e.Error, truth[e.Key])
		}
	}
}

func TestTopNWeighted(t *testing.T) {
	s := NewTopN(4)
	s.AddWeighted(7, 100)
	s.AddWeighted(8, 50)
	s.AddWeighted(7, 25)
	if got := s.Count(7); got != 125 {
		t.Errorf("count(7) = %d, want 125", got)
	}
	if got := s.Count(99); got != 0 {
		t.Errorf("untracked key count %d, want 0", got)
	}
	s.AddWeighted(9, 0)
	if s.Len() != 2 {
		t.Error("zero weight must be ignored")
	}
}

func TestTopNMergePreservesHeavyHitters(t *testing.T) {
	a := NewTopN(8)
	b := NewTopN(8)
	for i := 0; i < 1000; i++ {
		a.Add(1)
		b.Add(2)
	}
	for i := 0; i < 600; i++ {
		a.Add(3)
		b.Add(3)
	}
	rng := rand.New(rand.NewSource(15))
	for i := 0; i < 500; i++ {
		a.Add(uint64(10 + rng.Intn(50)))
		b.Add(uint64(10 + rng.Intn(50)))
	}
	a.Merge(b)
	if a.Len() > 8 {
		t.Errorf("merged sketch exceeds capacity: %d", a.Len())
	}
	top := a.Top(3)
	keys := map[uint64]uint64{}
	for _, e := range top {
		keys[e.Key] = e.Count
	}
	if keys[3] < 1200 {
		t.Errorf("key 3 (split across sketches) must rank with ≈1200: %+v", top)
	}
	if keys[1] < 1000 || keys[2] < 1000 {
		t.Errorf("per-sketch heavy hitters must survive merge: %+v", top)
	}
}

func TestTopNMergeNilAndEmpty(t *testing.T) {
	s := NewTopN(4)
	s.Add(1)
	s.Merge(nil)
	s.Merge(NewTopN(4))
	if s.Len() != 1 || s.Count(1) != 1 {
		t.Error("nil/empty merges must be no-ops")
	}
}

func TestTopNDeterministicOrder(t *testing.T) {
	s := NewTopN(8)
	for k := uint64(0); k < 8; k++ {
		s.Add(k) // all counts equal
	}
	e := s.Entries()
	for i := 1; i < len(e); i++ {
		if e[i-1].Count == e[i].Count && e[i-1].Key >= e[i].Key {
			t.Fatalf("ties must sort by ascending key: %+v", e)
		}
	}
}

func TestTopNCapacityClamp(t *testing.T) {
	s := NewTopN(0)
	s.Add(1)
	s.Add(2)
	if s.Len() != 1 {
		t.Errorf("capacity clamps to 1, len %d", s.Len())
	}
}

func TestTopNBinaryRoundTrip(t *testing.T) {
	s := NewTopN(16)
	rng := rand.New(rand.NewSource(16))
	for i := 0; i < 10000; i++ {
		s.Add(uint64(rng.Intn(40)))
	}
	buf := s.AppendBinary(nil)
	got, rest, err := DecodeTopN(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Errorf("%d trailing bytes", len(rest))
	}
	if got.Len() != s.Len() {
		t.Fatalf("len %d vs %d", got.Len(), s.Len())
	}
	want := s.Entries()
	have := got.Entries()
	for i := range want {
		if want[i] != have[i] {
			t.Errorf("entry %d: %+v vs %+v", i, have[i], want[i])
		}
	}
	if _, _, err := DecodeTopN(buf[:3]); err == nil {
		t.Error("truncated input must fail")
	}
	if _, _, err := DecodeTopN(nil); err == nil {
		t.Error("empty input must fail")
	}
}

func BenchmarkTopNAdd(b *testing.B) {
	s := NewTopN(16)
	rng := rand.New(rand.NewSource(1))
	keys := make([]uint64, 1024)
	for i := range keys {
		keys[i] = uint64(rng.Intn(100))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(keys[i%1024])
	}
}

func BenchmarkTopNMerge(b *testing.B) {
	mk := func(seed int64) *TopN {
		s := NewTopN(16)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 10000; i++ {
			s.Add(uint64(rng.Intn(64)))
		}
		return s
	}
	x, y := mk(1), mk(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z := NewTopN(16)
		z.Merge(x)
		z.Merge(y)
	}
}
