// Package obs is the repository's unified telemetry layer: a stdlib-only
// concurrent metrics registry (counters, gauges, fixed-bucket latency
// histograms), Prometheus-style text exposition, HTTP middleware recording
// per-endpoint request counts, status classes and latencies, span timing
// for pipeline stages, health/readiness probes, and a statistical anomaly
// watchdog that maintains rolling baselines over operational rates.
//
// Every serving daemon mounts one Registry at GET /metrics; the ingestion
// engine, the query API, and the batch pipeline all record into it, so a
// single scrape shows the whole system: request latency percentiles per
// endpoint, ingest accept/reject counters, merge and publish durations,
// and watchdog z-scores. Metric names follow the Prometheus conventions
// (snake case, base units, `_total` suffix on counters) under the `pol_`
// namespace.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Labels attaches dimensions to a metric. Label values are free-form but
// must be low-cardinality: every distinct combination creates a series.
type Labels map[string]string

// metric kinds for exposition.
const (
	kindCounter = "counter"
	kindGauge   = "gauge"
	kindHist    = "histogram"
)

// Counter is a monotonically increasing value.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increases the counter by n (negative n is ignored: counters only go
// up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an arbitrary float64 value that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add increments the gauge by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		newV := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, newV) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// series is one named+labelled metric instance.
type series struct {
	name   string
	kind   string
	labels string // canonical rendered label block, e.g. `{a="b",c="d"}`

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      atomic.Pointer[func() float64] // sampled at exposition time when non-nil
}

// sample returns the series' exposition value: the sampled func when one
// is registered, otherwise the stored counter/gauge value.
func (s *series) sample() float64 {
	if p := s.fn.Load(); p != nil {
		return (*p)()
	}
	switch {
	case s.counter != nil:
		return float64(s.counter.Value())
	case s.gauge != nil:
		return s.gauge.Value()
	}
	return 0
}

// Registry holds a process's metrics. All methods are safe for concurrent
// use; metric constructors are get-or-create, so re-registering the same
// name+labels returns the existing instance.
type Registry struct {
	mu     sync.RWMutex
	series map[string]*series // keyed by name + canonical labels
	help   map[string]string  // per metric name
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		series: make(map[string]*series),
		help:   make(map[string]string),
	}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry, for callers without an
// explicit one.
func Default() *Registry { return defaultRegistry }

// Help sets the exposition HELP text for a metric name.
func (r *Registry) Help(name, text string) {
	r.mu.Lock()
	r.help[name] = text
	r.mu.Unlock()
}

// renderLabels produces the canonical sorted label block ("" when empty).
func renderLabels(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

// lookup returns the series for name+labels, creating it with mk when
// absent. Kind conflicts on an existing series panic: they are programming
// errors, like prometheus.MustRegister.
func (r *Registry) lookup(name string, labels Labels, kind string, mk func() *series) *series {
	lb := renderLabels(labels)
	key := name + lb
	r.mu.RLock()
	s, ok := r.series[key]
	r.mu.RUnlock()
	if ok {
		if s.kind != kind {
			panic(fmt.Sprintf("obs: metric %s re-registered as %s (was %s)", key, kind, s.kind))
		}
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok = r.series[key]; ok {
		if s.kind != kind {
			panic(fmt.Sprintf("obs: metric %s re-registered as %s (was %s)", key, kind, s.kind))
		}
		return s
	}
	s = mk()
	s.name, s.kind, s.labels = name, kind, lb
	r.series[key] = s
	return s
}

// Counter returns the counter for name+labels, creating it if needed.
func (r *Registry) Counter(name string, labels Labels) *Counter {
	s := r.lookup(name, labels, kindCounter, func() *series {
		return &series{counter: &Counter{}}
	})
	return s.counter
}

// Gauge returns the gauge for name+labels, creating it if needed.
func (r *Registry) Gauge(name string, labels Labels) *Gauge {
	s := r.lookup(name, labels, kindGauge, func() *series {
		return &series{gauge: &Gauge{}}
	})
	return s.gauge
}

// GaugeFunc registers (or replaces) a gauge whose value is sampled from fn
// at exposition time — the zero-overhead way to surface an existing atomic
// counter block.
func (r *Registry) GaugeFunc(name string, labels Labels, fn func() float64) {
	s := r.lookup(name, labels, kindGauge, func() *series { return &series{} })
	s.fn.Store(&fn)
}

// CounterFunc registers (or replaces) a counter sampled from fn at
// exposition time. fn must be monotonically non-decreasing.
func (r *Registry) CounterFunc(name string, labels Labels, fn func() float64) {
	s := r.lookup(name, labels, kindCounter, func() *series { return &series{} })
	s.fn.Store(&fn)
}

// Histogram returns the histogram for name+labels, creating it with the
// given bucket upper bounds (DefLatencyBuckets when none given). Bounds of
// an existing histogram are not changed.
func (r *Registry) Histogram(name string, labels Labels, bounds ...float64) *Histogram {
	s := r.lookup(name, labels, kindHist, func() *series {
		return &series{hist: NewHistogram(bounds...)}
	})
	return s.hist
}

// snapshot returns all series sorted by name then label block, for
// deterministic exposition.
func (r *Registry) snapshot() ([]*series, map[string]string) {
	r.mu.RLock()
	out := make([]*series, 0, len(r.series))
	for _, s := range r.series {
		out = append(out, s)
	}
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].name != out[j].name {
			return out[i].name < out[j].name
		}
		return out[i].labels < out[j].labels
	})
	return out, help
}
