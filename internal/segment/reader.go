package segment

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/patternsoflife/pol/internal/geo"
	"github.com/patternsoflife/pol/internal/hexgrid"
	"github.com/patternsoflife/pol/internal/inventory"
	"github.com/patternsoflife/pol/internal/model"
)

// DefaultMaxPinned is the default cap on decompressed shard blocks pinned
// in memory at once. 64 of 256 shards keeps a hot replica's RSS at a
// fraction of the heap inventory while serving a skewed query mix almost
// entirely from pinned blocks.
const DefaultMaxPinned = 64

// Options tune a segment reader.
type Options struct {
	// MaxPinned caps the decompressed shard blocks held in the LRU.
	// 0 means DefaultMaxPinned; negative means 1.
	MaxPinned int
	// NoMmap forces pread-style ReadAt even where mmap is available.
	NoMmap bool
	// Metrics receives cache and corruption counters; nil disables.
	Metrics *Metrics
}

// Reader serves inventory queries directly from a POLSEG1 segment file.
// Open reads only the fixed tail and the footer index — O(index), not
// O(inventory) — and every query lazily loads, CRC-verifies and
// decompresses just the shard blocks it touches, keeping the hottest
// MaxPinned of them pinned in an LRU.
//
// Reader implements inventory.View, so the api layer serves from it
// interchangeably with the heap inventory. The View methods cannot
// return errors; on a corrupt block they report the group as absent,
// count the failure in Metrics, and retain the first error for Err().
// Callers that must distinguish "absent" from "damaged" (the replication
// and query tools) use the error-returning Lookup / EachGroup.
//
// A Reader is safe for concurrent use. Summaries returned from queries
// are shared and must not be mutated, matching the frozen-snapshot
// contract of the heap path.
type Reader struct {
	path string
	f    *os.File
	size int64
	mm   []byte // mmap of the whole file; nil when unavailable

	info  inventory.BuildInfo
	tail  Tail
	index []BlockInfo
	// byShard maps shard id → position in index, -1 when the shard is
	// empty.
	byShard [inventory.ShardCount]int16

	cache   *shardCache
	metrics *Metrics

	dirOnce sync.Once
	dir     *keyDir
	dirErr  error

	firstErr atomic.Pointer[error]
	closed   atomic.Bool
}

// Open opens a segment for querying, reading only the tail and index.
func Open(path string, opts Options) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("segment: open %s: %w", path, err)
	}
	r, err := newReader(f, path, opts)
	if err != nil {
		f.Close()
		return nil, err
	}
	if r.metrics != nil {
		r.metrics.Opens.Add(1)
		r.metrics.noteOpen(r)
	}
	return r, nil
}

func newReader(f *os.File, path string, opts Options) (*Reader, error) {
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("segment: stat %s: %w", path, err)
	}
	r := &Reader{path: path, f: f, size: st.Size(), metrics: opts.Metrics}
	if r.size < int64(headerFixedLen+TailLen) {
		return nil, fmt.Errorf("segment: %s is %d bytes: %w", path, r.size, ErrTruncated)
	}
	if !opts.NoMmap {
		if mm, err := mmapFile(f, r.size); err == nil {
			r.mm = mm
		}
	}

	tb, err := r.bytesAt(r.size-TailLen, TailLen)
	if err != nil {
		return nil, fmt.Errorf("segment: tail: %w", err)
	}
	if r.tail, err = ParseTail(tb, r.size); err != nil {
		r.unmap()
		return nil, err
	}
	ib, err := r.bytesAt(r.tail.IndexOff, r.tail.IndexLen)
	if err != nil {
		r.unmap()
		return nil, fmt.Errorf("segment: index: %w", err)
	}
	if r.index, err = ParseIndex(ib, r.tail); err != nil {
		r.unmap()
		return nil, err
	}
	for i := range r.byShard {
		r.byShard[i] = -1
	}
	for i, bi := range r.index {
		r.byShard[bi.Shard] = int16(i)
	}

	hb, err := r.bytesAt(0, r.tail.HeaderLen)
	if err != nil {
		r.unmap()
		return nil, fmt.Errorf("segment: header: %w", err)
	}
	if CRC(hb) != r.tail.HeaderCRC {
		r.unmap()
		return nil, fmt.Errorf("segment: header: %w", ErrChecksum)
	}
	if !bytes.Equal(hb[:8], segMagic) {
		r.unmap()
		return nil, fmt.Errorf("segment: header magic %q: %w", hb[:8], ErrBadMagic)
	}
	if v := binary.LittleEndian.Uint32(hb[8:12]); v != segVersion {
		r.unmap()
		return nil, fmt.Errorf("segment: unsupported version %d: %w", v, ErrCorrupt)
	}
	r.info.Resolution = int(binary.LittleEndian.Uint32(hb[12:16]))
	r.info.RawRecords = int64(binary.LittleEndian.Uint64(hb[16:24]))
	r.info.UsedRecords = int64(binary.LittleEndian.Uint64(hb[24:32]))
	r.info.BuiltUnix = int64(binary.LittleEndian.Uint64(hb[32:40]))
	descLen := int(binary.LittleEndian.Uint32(hb[40:44]))
	if headerFixedLen+descLen != r.tail.HeaderLen {
		r.unmap()
		return nil, fmt.Errorf("segment: description length %d in %d-byte header: %w", descLen, r.tail.HeaderLen, ErrCorrupt)
	}
	r.info.Description = string(hb[headerFixedLen:])

	max := opts.MaxPinned
	if max == 0 {
		max = DefaultMaxPinned
	}
	if max < 1 {
		max = 1
	}
	r.cache = newShardCache(max)
	return r, nil
}

// Path returns the file the reader serves from.
func (r *Reader) Path() string { return r.path }

// Size returns the on-disk byte size of the segment.
func (r *Reader) Size() int64 { return r.size }

// Mapped reports whether the file is memory-mapped.
func (r *Reader) Mapped() bool { return r.mm != nil }

// Blocks returns the footer index (shared; do not mutate).
func (r *Reader) Blocks() []BlockInfo { return r.index }

// Err returns the first corruption or I/O error swallowed by the
// error-less inventory.View methods, or nil.
func (r *Reader) Err() error {
	if p := r.firstErr.Load(); p != nil {
		return *p
	}
	return nil
}

// Close unmaps and closes the file. Queries racing a Close may return
// errors; the serving tier swaps readers with a drain delay instead of
// closing under load.
func (r *Reader) Close() error {
	if !r.closed.CompareAndSwap(false, true) {
		return nil
	}
	if r.metrics != nil {
		r.metrics.noteClose(r)
		n, b := r.cache.stats()
		r.metrics.Pinned.Add(-int64(n))
		r.metrics.PinnedBytes.Add(-b)
	}
	r.unmap()
	return r.f.Close()
}

func (r *Reader) unmap() {
	if r.mm != nil {
		munmap(r.mm)
		r.mm = nil
	}
}

// bytesAt returns n bytes at off — a zero-copy subslice under mmap, a
// fresh pread buffer otherwise. Out-of-range reads are ErrTruncated.
func (r *Reader) bytesAt(off int64, n int) ([]byte, error) {
	if off < 0 || n < 0 || off+int64(n) > r.size {
		return nil, fmt.Errorf("segment: read [%d,+%d) beyond %d bytes: %w", off, n, r.size, ErrTruncated)
	}
	if r.mm != nil {
		return r.mm[off : off+int64(n) : off+int64(n)], nil
	}
	buf := make([]byte, n)
	if _, err := r.f.ReadAt(buf, off); err != nil {
		return nil, fmt.Errorf("segment: read at %d: %w", off, err)
	}
	return buf, nil
}

// BlockBytes returns the CRC-verified compressed bytes of one shard's
// block, or (nil, nil) when the shard is empty — the unit of the
// replica's shard-level delta sync.
func (r *Reader) BlockBytes(shard int) ([]byte, error) {
	if shard < 0 || shard >= inventory.ShardCount {
		return nil, fmt.Errorf("segment: shard %d out of range", shard)
	}
	bi := r.byShard[shard]
	if bi < 0 {
		return nil, nil
	}
	return r.compressedBlock(&r.index[bi])
}

func (r *Reader) compressedBlock(bi *BlockInfo) ([]byte, error) {
	b, err := r.bytesAt(bi.Off, int(bi.CompLen))
	if err != nil {
		return nil, err
	}
	if CRC(b) != bi.CRC {
		return nil, fmt.Errorf("segment: shard %d block: %w", bi.Shard, ErrChecksum)
	}
	return b, nil
}

// pinnedShard is one decompressed, parsed column block. Immutable after
// load except for the lazily memoized summary decodes, which are
// mutex-guarded.
type pinnedShard struct {
	n       int
	keys    []byte   // n × EncodedKeyLen, ascending
	records []byte   // n × u64
	offs    []uint32 // n+1 offsets into blob
	blob    []byte

	mu   sync.Mutex
	sums []*inventory.CellSummary // memoized decodes, nil until first Get
}

func (p *pinnedShard) memBytes() int64 {
	return int64(len(p.keys) + len(p.records) + len(p.blob) + 4*len(p.offs))
}

func (p *pinnedShard) key(i int) []byte {
	return p.keys[i*inventory.EncodedKeyLen : (i+1)*inventory.EncodedKeyLen]
}

// summary decodes (and memoizes) the i-th summary.
func (p *pinnedShard) summary(i int) (*inventory.CellSummary, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.sums == nil {
		p.sums = make([]*inventory.CellSummary, p.n)
	}
	if s := p.sums[i]; s != nil {
		return s, nil
	}
	body := p.blob[p.offs[i]:p.offs[i+1]]
	s, rest, err := inventory.DecodeCellSummary(body)
	if err != nil {
		return nil, fmt.Errorf("segment: summary %d: %v: %w", i, err, ErrCorrupt)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("segment: summary %d: %d trailing bytes: %w", i, len(rest), ErrCorrupt)
	}
	p.sums[i] = s
	return s, nil
}

// loadRaw decompresses and parses one block without touching the cache.
func (r *Reader) loadRaw(bi *BlockInfo) (*pinnedShard, error) {
	comp, err := r.compressedBlock(bi)
	if err != nil {
		return nil, err
	}
	raw := make([]byte, int(bi.RawLen))
	fr := flate.NewReader(bytes.NewReader(comp))
	if _, err := io.ReadFull(fr, raw); err != nil {
		return nil, fmt.Errorf("segment: shard %d inflate: %v: %w", bi.Shard, err, ErrCorrupt)
	}
	// Any trailing decompressed bytes mean RawLen lies.
	if n, _ := fr.Read(make([]byte, 1)); n != 0 {
		return nil, fmt.Errorf("segment: shard %d inflates past %d bytes: %w", bi.Shard, bi.RawLen, ErrCorrupt)
	}
	fr.Close()
	return parseBlock(bi, raw)
}

func parseBlock(bi *BlockInfo, raw []byte) (*pinnedShard, error) {
	bad := func(what string) error {
		return fmt.Errorf("segment: shard %d %s: %w", bi.Shard, what, ErrCorrupt)
	}
	if len(raw) < 4 {
		return nil, bad("block header")
	}
	n := int(binary.LittleEndian.Uint32(raw))
	if uint32(n) != bi.NGroups {
		return nil, bad("group count")
	}
	need := 4 + n*inventory.EncodedKeyLen + n*8 + (n+1)*4
	if n < 0 || len(raw) < need {
		return nil, bad("column geometry")
	}
	p := &pinnedShard{n: n}
	raw = raw[4:]
	p.keys, raw = raw[:n*inventory.EncodedKeyLen], raw[n*inventory.EncodedKeyLen:]
	p.records, raw = raw[:n*8], raw[n*8:]
	p.offs = make([]uint32, n+1)
	for i := range p.offs {
		p.offs[i] = binary.LittleEndian.Uint32(raw[4*i:])
	}
	p.blob = raw[(n+1)*4:]
	for i := 0; i < n; i++ {
		if p.offs[i] > p.offs[i+1] {
			return nil, bad("offset column order")
		}
		if i > 0 && bytes.Compare(p.key(i-1), p.key(i)) >= 0 {
			return nil, bad("key column order")
		}
	}
	if int(p.offs[n]) != len(p.blob) {
		return nil, bad("blob length")
	}
	return p, nil
}

// pin returns the decompressed block for a shard through the LRU.
func (r *Reader) pin(shard int) (*pinnedShard, error) {
	bi := r.byShard[shard]
	if bi < 0 {
		return nil, nil
	}
	return r.cache.get(shard, r.metrics, func() (*pinnedShard, error) {
		return r.loadRaw(&r.index[bi])
	})
}

// fail records a swallowed error for Err() and the corruption counter.
func (r *Reader) fail(err error) {
	if err == nil {
		return
	}
	if r.metrics != nil {
		r.metrics.CorruptBlocks.Add(1)
	}
	r.firstErr.CompareAndSwap(nil, &err)
}

// Lookup returns the summary for one group identifier, reading at most
// one block: binary search over the shard's sorted key column.
func (r *Reader) Lookup(key inventory.GroupKey) (*inventory.CellSummary, bool, error) {
	p, err := r.pin(inventory.ShardOf(key))
	if err != nil || p == nil {
		return nil, false, err
	}
	want := inventory.AppendKey(nil, key)
	i := sort.Search(p.n, func(i int) bool {
		return bytes.Compare(p.key(i), want) >= 0
	})
	if i >= p.n || !bytes.Equal(p.key(i), want) {
		return nil, false, nil
	}
	s, err := p.summary(i)
	if err != nil {
		return nil, false, err
	}
	return s, true, nil
}

// EachGroup streams every (key, summary) pair in global key order
// (ascending shard, then ascending key), stopping early if f returns
// false. Blocks are loaded transiently — a full scan does not evict the
// query-path LRU.
func (r *Reader) EachGroup(f func(inventory.GroupKey, *inventory.CellSummary) bool) error {
	for i := range r.index {
		bi := &r.index[i]
		p, err := r.cache.peek(bi.Shard)
		if err != nil || p == nil {
			// Not pinned (or pinned-load failed): load outside the cache.
			if p, err = r.loadRaw(bi); err != nil {
				return err
			}
		}
		for g := 0; g < p.n; g++ {
			k, err := inventory.DecodeKey(p.key(g))
			if err != nil {
				return fmt.Errorf("segment: shard %d key %d: %v: %w", bi.Shard, g, err, ErrCorrupt)
			}
			s, err := p.summary(g)
			if err != nil {
				return err
			}
			if !f(k, s) {
				return nil
			}
		}
	}
	return nil
}

// odKey mirrors the heap inventory's OD sub-index key.
type odKey struct {
	origin, dest model.PortID
	vtype        model.VesselType
}

// keyDir is the reader-wide key directory: every key's cell membership
// per grouping set plus the OD → cells sub-index, built once by
// streaming all key columns (never the summary blobs) and held for the
// reader's lifetime. It is the segment-side equivalent of the heap
// inventory's lazily built per-shard OD index.
type keyDir struct {
	cells  [3][]hexgrid.Cell
	counts [3]int
	od     map[odKey][]hexgrid.Cell
}

func (r *Reader) directory() (*keyDir, error) {
	r.dirOnce.Do(func() {
		d := &keyDir{od: make(map[odKey][]hexgrid.Cell)}
		var seen [3]map[hexgrid.Cell]struct{}
		for i := range seen {
			seen[i] = make(map[hexgrid.Cell]struct{})
		}
		for i := range r.index {
			bi := &r.index[i]
			comp, err := r.compressedBlock(bi)
			if err != nil {
				r.dirErr = err
				return
			}
			// Stream only up to the end of the key column.
			keyEnd := 4 + int(bi.NGroups)*inventory.EncodedKeyLen
			raw := make([]byte, keyEnd)
			fr := flate.NewReader(bytes.NewReader(comp))
			if _, err := io.ReadFull(fr, raw); err != nil {
				r.dirErr = fmt.Errorf("segment: shard %d inflate: %v: %w", bi.Shard, err, ErrCorrupt)
				return
			}
			fr.Close()
			if int(binary.LittleEndian.Uint32(raw)) != int(bi.NGroups) {
				r.dirErr = fmt.Errorf("segment: shard %d group count: %w", bi.Shard, ErrCorrupt)
				return
			}
			for g := 0; g < int(bi.NGroups); g++ {
				kb := raw[4+g*inventory.EncodedKeyLen:]
				k, err := inventory.DecodeKey(kb)
				if err != nil {
					r.dirErr = fmt.Errorf("segment: shard %d key %d: %v: %w", bi.Shard, g, err, ErrCorrupt)
					return
				}
				if k.Set < inventory.GSCell || k.Set > inventory.GSCellODType {
					r.dirErr = fmt.Errorf("segment: shard %d unknown grouping set %d: %w", bi.Shard, k.Set, ErrCorrupt)
					return
				}
				si := int(k.Set - inventory.GSCell)
				d.counts[si]++
				seen[si][k.Cell] = struct{}{}
				if k.Set == inventory.GSCellODType {
					ok := odKey{origin: k.Origin, dest: k.Dest, vtype: k.VType}
					d.od[ok] = append(d.od[ok], k.Cell)
				}
			}
		}
		for i := range seen {
			cs := make([]hexgrid.Cell, 0, len(seen[i]))
			for c := range seen[i] {
				cs = append(cs, c)
			}
			sort.Slice(cs, func(a, b int) bool { return cs[a] < cs[b] })
			d.cells[i] = cs
		}
		for k := range d.od {
			cs := d.od[k]
			sort.Slice(cs, func(a, b int) bool { return cs[a] < cs[b] })
		}
		r.dir = d
	})
	return r.dir, r.dirErr
}

// --- inventory.View ---

var _ inventory.View = (*Reader)(nil)

// Info returns the build provenance recorded in the segment header.
func (r *Reader) Info() inventory.BuildInfo { return r.info }

// Len returns the total group count, straight from the footer.
func (r *Reader) Len() int { return int(r.tail.TotalGroups) }

// Get returns the summary for an exact group identifier.
func (r *Reader) Get(key inventory.GroupKey) (*inventory.CellSummary, bool) {
	s, ok, err := r.Lookup(key)
	if err != nil {
		r.fail(err)
		return nil, false
	}
	return s, ok
}

// Cell returns the all-traffic summary of a cell.
func (r *Reader) Cell(cell hexgrid.Cell) (*inventory.CellSummary, bool) {
	return r.Get(inventory.GroupKey{Set: inventory.GSCell, Cell: cell})
}

// At returns the all-traffic summary of the cell containing p.
func (r *Reader) At(p geo.LatLng) (*inventory.CellSummary, bool) {
	return r.Cell(hexgrid.LatLngToCell(p, r.info.Resolution))
}

// CountGroups answers from the footer index's per-set counts — no block
// is read.
func (r *Reader) CountGroups(set inventory.GroupSet) int {
	if set < inventory.GSCell || set > inventory.GSCellODType {
		return 0
	}
	n := 0
	for i := range r.index {
		n += int(r.index[i].NSet[set-inventory.GSCell])
	}
	return n
}

// Cells returns all cells of one grouping set, sorted.
func (r *Reader) Cells(set inventory.GroupSet) []hexgrid.Cell {
	if set < inventory.GSCell || set > inventory.GSCellODType {
		return nil
	}
	d, err := r.directory()
	if err != nil {
		r.fail(err)
		return nil
	}
	return d.cells[set-inventory.GSCell]
}

// Each calls f for every (key, summary) pair.
func (r *Reader) Each(f func(inventory.GroupKey, *inventory.CellSummary) bool) {
	if err := r.EachGroup(f); err != nil {
		r.fail(err)
	}
}

// ODCells returns every cell with traffic for an OD+type key, sorted.
func (r *Reader) ODCells(origin, dest model.PortID, vt model.VesselType) []hexgrid.Cell {
	d, err := r.directory()
	if err != nil {
		r.fail(err)
		return nil
	}
	return d.od[odKey{origin: origin, dest: dest, vtype: vt}]
}

// ODSummary returns the summary for a cell under the OD grouping set.
func (r *Reader) ODSummary(cell hexgrid.Cell, origin, dest model.PortID, vt model.VesselType) (*inventory.CellSummary, bool) {
	return r.Get(inventory.GroupKey{Set: inventory.GSCellODType, Cell: cell, VType: vt, Origin: origin, Dest: dest})
}

// TypeSummary returns the summary for a (cell, vessel-type) group.
func (r *Reader) TypeSummary(cell hexgrid.Cell, vt model.VesselType) (*inventory.CellSummary, bool) {
	return r.Get(inventory.GroupKey{Set: inventory.GSCellType, Cell: cell, VType: vt})
}

// MostFrequentDestination returns the top destination of a cell.
func (r *Reader) MostFrequentDestination(cell hexgrid.Cell) (model.PortID, uint64, bool) {
	s, ok := r.Cell(cell)
	if !ok {
		return model.NoPort, 0, false
	}
	port, count := s.TopDestination()
	return port, count, port != model.NoPort
}

// Compression returns the Table-4 compression metric for a grouping set.
func (r *Reader) Compression(set inventory.GroupSet) float64 {
	if r.info.RawRecords == 0 {
		return 0
	}
	return 1 - float64(r.CountGroups(set))/float64(r.info.RawRecords)
}

// Utilization returns the Table-4 H3-utilization metric.
func (r *Reader) Utilization() float64 {
	total := hexgrid.NumCells(r.info.Resolution)
	if total == 0 {
		return 0
	}
	return float64(len(r.Cells(inventory.GSCell))) / float64(total)
}

// Load materializes a whole segment into a heap inventory — the bridge
// for tools (polquery -equal) and tests that need the concrete type.
func Load(path string) (*inventory.Inventory, error) {
	r, err := Open(path, Options{})
	if err != nil {
		return nil, err
	}
	defer r.Close()
	inv := inventory.New(r.Info())
	err = r.EachGroup(func(k inventory.GroupKey, s *inventory.CellSummary) bool {
		inv.Put(k, s)
		return true
	})
	if err != nil {
		return nil, err
	}
	if inv.Len() != r.Len() {
		return nil, fmt.Errorf("segment: materialized %d groups, footer says %d: %w", inv.Len(), r.Len(), ErrCorrupt)
	}
	if err := inv.Validate(); err != nil {
		return nil, fmt.Errorf("segment: %v: %w", err, ErrCorrupt)
	}
	return inv, nil
}
