package baseline

import (
	"math/rand"
	"testing"

	"github.com/patternsoflife/pol/internal/geo"
)

func TestDouglasPeuckerStraightLine(t *testing.T) {
	// A perfectly straight track simplifies to its endpoints.
	start := geo.LatLng{Lat: 0, Lng: 0}
	var track []geo.LatLng
	for i := 0; i <= 50; i++ {
		track = append(track, geo.Destination(start, 90, float64(i)*5e3))
	}
	kept := DouglasPeucker(track, 100)
	if len(kept) > 4 { // great-circle vs rhumb leaves tiny deviations
		t.Errorf("straight line kept %d points, want ~2", len(kept))
	}
	if kept[0] != 0 || kept[len(kept)-1] != 50 {
		t.Error("endpoints must be kept")
	}
}

func TestDouglasPeuckerKeepsTurns(t *testing.T) {
	// An L-shaped track must keep the corner.
	start := geo.LatLng{Lat: 10, Lng: 10}
	var track []geo.LatLng
	for i := 0; i <= 20; i++ {
		track = append(track, geo.Destination(start, 90, float64(i)*5e3))
	}
	corner := track[len(track)-1]
	for i := 1; i <= 20; i++ {
		track = append(track, geo.Destination(corner, 0, float64(i)*5e3))
	}
	kept := DouglasPeucker(track, 500)
	cornerKept := false
	for _, k := range kept {
		if k == 20 {
			cornerKept = true
		}
	}
	if !cornerKept {
		t.Errorf("corner must survive simplification; kept %v", kept)
	}
	if len(kept) > 8 {
		t.Errorf("L-track kept %d points, want few", len(kept))
	}
}

func TestDouglasPeuckerToleranceBound(t *testing.T) {
	// Every dropped point must be within tolerance of the simplified
	// polyline.
	rng := rand.New(rand.NewSource(5))
	start := geo.LatLng{Lat: 40, Lng: -30}
	var track []geo.LatLng
	for i := 0; i <= 200; i++ {
		p := geo.Destination(start, 80, float64(i)*3e3)
		track = append(track, geo.Destination(p, rng.Float64()*360, rng.Float64()*800))
	}
	const tol = 2000.0
	kept := DouglasPeucker(track, tol)
	if len(kept) < 2 || len(kept) >= len(track) {
		t.Fatalf("kept %d of %d", len(kept), len(track))
	}
	// Check deviation of each original point against its enclosing
	// simplified segment.
	for i, p := range track {
		// Find the kept span containing i.
		lo, hi := 0, len(kept)-1
		for s := 0; s+1 < len(kept); s++ {
			if kept[s] <= i && i <= kept[s+1] {
				lo, hi = kept[s], kept[s+1]
				break
			}
		}
		if d := pointToChordM(p, track[lo], track[hi]); d > tol*1.05 {
			t.Fatalf("point %d deviates %.0f m > tolerance", i, d)
		}
	}
}

func TestDouglasPeuckerDegenerate(t *testing.T) {
	if got := DouglasPeucker(nil, 100); len(got) != 0 {
		t.Error("empty track")
	}
	one := []geo.LatLng{{Lat: 1, Lng: 1}}
	if got := DouglasPeucker(one, 100); len(got) != 1 || got[0] != 0 {
		t.Error("single point")
	}
	two := []geo.LatLng{{Lat: 1, Lng: 1}, {Lat: 2, Lng: 2}}
	if got := DouglasPeucker(two, 100); len(got) != 2 {
		t.Error("two points")
	}
	// Duplicate points (zero-length chords) must not crash.
	dup := []geo.LatLng{{Lat: 1, Lng: 1}, {Lat: 1, Lng: 1}, {Lat: 1, Lng: 1}}
	if got := DouglasPeucker(dup, 100); len(got) < 2 {
		t.Error("duplicate points")
	}
}

func TestPointToChord(t *testing.T) {
	a := geo.LatLng{Lat: 0, Lng: 0}
	b := geo.LatLng{Lat: 0, Lng: 10}
	// Perpendicular deviation mid-chord.
	if d := pointToChordM(geo.LatLng{Lat: 1, Lng: 5}, a, b); d < 100e3 || d > 120e3 {
		t.Errorf("mid deviation %.0f m", d)
	}
	// Beyond the end: distance to b.
	p := geo.LatLng{Lat: 0, Lng: 12}
	want := geo.Haversine(p, b)
	if d := pointToChordM(p, a, b); d < want*0.95 || d > want*1.05 {
		t.Errorf("overshoot distance %.0f, want ≈ %.0f", d, want)
	}
	// Before the start: distance to a.
	q := geo.LatLng{Lat: 0, Lng: -3}
	wantQ := geo.Haversine(q, a)
	if d := pointToChordM(q, a, b); d < wantQ*0.95 || d > wantQ*1.05 {
		t.Errorf("undershoot distance %.0f, want ≈ %.0f", d, wantQ)
	}
}

func BenchmarkDouglasPeucker(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	start := geo.LatLng{Lat: 40, Lng: -30}
	var track []geo.LatLng
	for i := 0; i <= 2000; i++ {
		p := geo.Destination(start, 80, float64(i)*2e3)
		track = append(track, geo.Destination(p, rng.Float64()*360, rng.Float64()*500))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DouglasPeucker(track, 1000)
	}
}
