package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/patternsoflife/pol/internal/dataflow"
	"github.com/patternsoflife/pol/internal/fault"
	"github.com/patternsoflife/pol/internal/feed"
	"github.com/patternsoflife/pol/internal/model"
	"github.com/patternsoflife/pol/internal/obs"
	"github.com/patternsoflife/pol/internal/pipeline"
	"github.com/patternsoflife/pol/internal/ports"
	"github.com/patternsoflife/pol/internal/sim"
)

// Shared archive fixture for the peer-shuffle tests: a small NMEA archive
// plus its single-process reference build. Built once; each test gets its
// own on-disk copy.
var (
	archOnce  sync.Once
	archData  []byte
	archLocal *pipeline.Result
	archErr   error
)

func archiveFixture(t *testing.T) (string, *pipeline.Result) {
	t.Helper()
	archOnce.Do(func() {
		s, err := sim.New(testSpec.Config(), ports.Default())
		if err != nil {
			archErr = err
			return
		}
		var buf bytes.Buffer
		fw := feed.NewWriter(&buf)
		for i, v := range s.Fleet().Vessels {
			recs, _ := s.VesselTrack(i)
			if len(recs) > 80 {
				recs = recs[:80]
			}
			for j, r := range recs {
				if j%25 == 0 {
					if err := fw.WriteStatic(v, r.Time); err != nil {
						archErr = err
						return
					}
				}
				if err := fw.WritePosition(r); err != nil {
					archErr = err
					return
				}
			}
		}
		if err := fw.Flush(); err != nil {
			archErr = err
			return
		}
		archData = buf.Bytes()

		fr := feed.NewReader(bytes.NewReader(archData))
		all, err := fr.ReadAll()
		if err != nil {
			archErr = err
			return
		}
		ctx := dataflow.NewContext(4)
		archLocal, archErr = pipeline.Run(
			dataflow.Parallelize(ctx, all, 8),
			fr.StaticsAsVesselInfo(),
			ports.NewIndex(ports.Default(), ports.IndexResolution),
			pipeline.Options{Resolution: testRes})
	})
	if archErr != nil {
		t.Fatal(archErr)
	}
	path := filepath.Join(t.TempDir(), "fleet.nmea")
	if err := os.WriteFile(path, archData, 0o644); err != nil {
		t.Fatal(err)
	}
	return path, archLocal
}

// newTestShuffle builds a shuffleState with no running loops: tests drive
// ingest/assemble directly and read the reduce queue themselves. The hour
// heartbeat keeps the roster-started heartbeat loop from ever touching the
// (absent) coordinator connection.
func newTestShuffle(t *testing.T, name string) *shuffleState {
	t.Helper()
	w := &worker{
		cfg: WorkerConfig{
			Coordinator:    "unused",
			Name:           name,
			HeartbeatEvery: time.Hour,
		}.withDefaults(),
		metrics: newWorkerMetrics(obs.NewRegistry()),
		portIdx: ports.NewIndex(ports.Default(), ports.IndexResolution),
	}
	sh, err := newShuffleState(w)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sh.shutdown)
	w.shuffle = sh
	return sh
}

// sealTestFrame builds one sealed peer frame for tests.
func sealTestFrame(t *testing.T, taskID uint64, section, bucket, seq int, last bool, frames int,
	recs []model.PositionRecord, statics map[uint32]model.VesselInfo) *peerFrame {
	t.Helper()
	f := &peerFrame{From: "test", TaskID: taskID, Section: section, Bucket: bucket,
		Seq: seq, Last: last, Frames: frames}
	if err := sealFrame(f, recs, statics); err != nil {
		t.Fatal(err)
	}
	return f
}

// TestPeerFrameRoundTrip seals, writes, reads and opens one shuffle frame,
// pinning the codec: records and statics survive, the byte counts agree,
// and the raw length is recorded for the compression-ratio metric.
func TestPeerFrameRoundTrip(t *testing.T) {
	recs := []model.PositionRecord{{MMSI: 111, Time: 5}, {MMSI: 222, Time: 9}}
	statics := map[uint32]model.VesselInfo{111: {MMSI: 111}}
	f := sealTestFrame(t, 3, 1, 2, 0, true, 1, recs, statics)
	if f.RawLen <= 0 || f.Records != 2 {
		t.Fatalf("seal: RawLen=%d Records=%d", f.RawLen, f.Records)
	}
	var buf bytes.Buffer
	wn, err := writePeerFrame(&buf, f)
	if err != nil {
		t.Fatal(err)
	}
	got, rn, err := readPeerFrame(bytes.NewReader(buf.Bytes()), DefaultMaxFrameBytes)
	if err != nil {
		t.Fatal(err)
	}
	if wn != buf.Len() || rn != buf.Len() {
		t.Errorf("frame sizes: wrote %d, read %d, want %d", wn, rn, buf.Len())
	}
	p, err := got.open(DefaultMaxFrameBytes)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Records) != 2 || p.Records[0].MMSI != 111 || p.Records[1].MMSI != 222 {
		t.Errorf("records round-trip: %+v", p.Records)
	}
	if len(p.Statics) != 1 || p.Statics[111].MMSI != 111 {
		t.Errorf("statics round-trip: %+v", p.Statics)
	}
}

// TestPeerFrameCorruption is the property suite over damaged frames: a
// flipped payload byte, a header field rewritten after sealing (a frame
// claiming the wrong bucket), a resealed header whose record count lies,
// a truncated stream, and an oversized length prefix must all be rejected
// before anything reaches a reduce.
func TestPeerFrameCorruption(t *testing.T) {
	recs := []model.PositionRecord{{MMSI: 7, Time: 1}, {MMSI: 8, Time: 2}}
	mk := func() *peerFrame { return sealTestFrame(t, 5, 0, 1, 0, true, 1, recs, nil) }

	flipped := mk()
	flipped.Payload = append([]byte(nil), flipped.Payload...)
	flipped.Payload[len(flipped.Payload)/2] ^= 0x40
	if _, err := flipped.open(DefaultMaxFrameBytes); err == nil || !strings.Contains(err.Error(), "CRC") {
		t.Errorf("flipped payload: %v, want CRC mismatch", err)
	}

	relabeled := mk()
	relabeled.Bucket++ // claims a different bucket than was sealed
	if _, err := relabeled.open(DefaultMaxFrameBytes); err == nil || !strings.Contains(err.Error(), "CRC") {
		t.Errorf("relabeled bucket: %v, want CRC mismatch", err)
	}

	lying := mk()
	lying.Records++
	lying.CRC = lying.digest() // CRC consistent, payload contradicts header
	if _, err := lying.open(DefaultMaxFrameBytes); err == nil || !strings.Contains(err.Error(), "records") {
		t.Errorf("lying record count: %v, want record-count rejection", err)
	}

	var buf bytes.Buffer
	if _, err := writePeerFrame(&buf, mk()); err != nil {
		t.Fatal(err)
	}
	if _, _, err := readPeerFrame(bytes.NewReader(buf.Bytes()[:buf.Len()-3]), DefaultMaxFrameBytes); err == nil {
		t.Error("truncated stream accepted")
	}
	if _, _, err := readPeerFrame(bytes.NewReader(buf.Bytes()), 8); err == nil ||
		!strings.Contains(err.Error(), "exceeds cap") {
		t.Errorf("oversize frame: %v, want cap rejection", err)
	}
}

// TestShuffleReorderAndDedupe drives reassembly directly: frames arriving
// out of order across two sections complete the bucket exactly once,
// duplicates (mid-stream and after the reduce fired) are dropped and
// counted, corrupt frames are rejected, and assemble reproduces the
// section-ascending, sequence-ordered record stream.
func TestShuffleReorderAndDedupe(t *testing.T) {
	sh := newTestShuffle(t, "self")
	sh.setRoster(&rosterMsg{Epoch: 1, Sections: 2, Resolution: testRes,
		Buckets: []BucketAssign{{Bucket: 0, Owner: "self", Addr: "local", TaskID: 9}}})
	if sh.currentEpoch() != 1 {
		t.Fatalf("epoch = %d, want 1", sh.currentEpoch())
	}
	// A stale roster must be ignored.
	sh.setRoster(&rosterMsg{Epoch: 1, Sections: 99})
	if sh.roster.Sections != 2 {
		t.Fatal("stale roster epoch installed")
	}

	r0 := []model.PositionRecord{{MMSI: 1, Time: 1}}
	r1 := []model.PositionRecord{{MMSI: 1, Time: 2}}
	r2 := []model.PositionRecord{{MMSI: 1, Time: 3}}
	s0f0 := sealTestFrame(t, 20, 0, 0, 0, false, 0, r0, nil)
	s0f1 := sealTestFrame(t, 20, 0, 0, 1, true, 2, r1, nil)
	s1f0 := sealTestFrame(t, 21, 1, 0, 0, true, 1, r2, map[uint32]model.VesselInfo{1: {MMSI: 1}})

	bad := sealTestFrame(t, 20, 0, 0, 0, false, 0, r0, nil)
	bad.CRC++
	if err := sh.ingest(bad); err == nil {
		t.Error("corrupt frame ingested")
	}

	// Section 1 first, then section 0 reversed, with a mid-stream dup.
	for _, f := range []*peerFrame{s1f0, s0f1, s0f1, s0f0} {
		if err := sh.ingest(f); err != nil {
			t.Fatal(err)
		}
	}
	if got := sh.w.metrics.peerFramesDup.Value(); got != 1 {
		t.Errorf("mid-stream dup count = %d, want 1", got)
	}
	select {
	case b := <-sh.reduceCh:
		if b != 0 {
			t.Fatalf("reduce queued bucket %d, want 0", b)
		}
	default:
		t.Fatal("completed bucket not queued for reduce")
	}
	// A replay arriving after the reduce fired is dropped as late.
	if err := sh.ingest(s1f0); err != nil {
		t.Fatal(err)
	}
	if got := sh.w.metrics.peerFramesDup.Value(); got != 2 {
		t.Errorf("late dup count = %d, want 2", got)
	}

	records, statics, as, ok := sh.assemble(0)
	if !ok || as.TaskID != 9 {
		t.Fatalf("assemble: ok=%v assign=%+v", ok, as)
	}
	if len(records) != 3 || records[0].Time != 1 || records[1].Time != 2 || records[2].Time != 3 {
		t.Errorf("assembled order: %+v", records)
	}
	if len(statics) != 1 || statics[1].MMSI != 1 {
		t.Errorf("assembled statics: %+v", statics)
	}
}

// TestPeerShuffleArchiveEqualsLocal is the peer-fabric equivalence
// property: for 1, 2 and 4 workers the direct-shuffle distributed build is
// bit-exact with the single-process build, and the shuffled records never
// transit the coordinator.
func TestPeerShuffleArchiveEqualsLocal(t *testing.T) {
	path, local := archiveFixture(t)
	for _, n := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("workers=%d", n), func(t *testing.T) {
			co := newTestCoordinator(t, func(c *Config) { c.MinWorkers = n })
			addr := co.Addr().String()
			regs := make([]*obs.Registry, n)
			var chans []chan error
			for i := 0; i < n; i++ {
				i := i
				regs[i] = obs.NewRegistry()
				chans = append(chans, startWorker(t, addr, func(c *WorkerConfig) {
					c.Name = fmt.Sprintf("p%d", i)
					c.Obs = regs[i]
				}))
			}
			res, err := co.Run(context.Background(), Job{
				Resolution: testRes,
				Archive:    &ArchiveJob{Path: path, MapTasks: 5, ReduceTasks: 2 * n, Shuffle: ShufflePeer},
			})
			if err != nil {
				t.Fatal(err)
			}
			assertEqualBuild(t, res, local)
			if res.Tasks != 5+2*n {
				t.Errorf("scheduled %d tasks, want %d", res.Tasks, 5+2*n)
			}
			var peerBytes, coordBytes int64
			for _, reg := range regs {
				peerBytes += reg.Counter(MetricShuffleBytes, obs.Labels{"path": "peer", "dir": "in"}).Value()
				coordBytes += reg.Counter(MetricShuffleBytes, obs.Labels{"path": "coordinator", "dir": "out"}).Value()
				coordBytes += reg.Counter(MetricShuffleBytes, obs.Labels{"path": "coordinator", "dir": "in"}).Value()
			}
			if n > 1 && peerBytes == 0 {
				t.Error("no peer shuffle bytes recorded")
			}
			if coordBytes != 0 {
				t.Errorf("peer job moved %d shuffle bytes through the coordinator", coordBytes)
			}
			for i, ch := range chans {
				if err := <-ch; err != nil {
					t.Errorf("worker %d: %v", i, err)
				}
			}
		})
	}
}

// TestPeerShuffleOwnerKilledMidShuffle kills one of three workers while the
// shuffle is in flight: the victim holds completed scan output and owns
// buckets, so its death must re-route the shuffle — re-queue its scans,
// re-own its buckets under a new roster epoch — and the result must still
// be bit-exact.
func TestPeerShuffleOwnerKilledMidShuffle(t *testing.T) {
	path, local := archiveFixture(t)
	co := newTestCoordinator(t, func(c *Config) {
		c.MinWorkers = 3
		c.MaxRetries = 6
	})
	addr := co.Addr().String()
	var survivors []chan error
	for i := 0; i < 2; i++ {
		i := i
		survivors = append(survivors, startWorker(t, addr, func(c *WorkerConfig) {
			c.Name = fmt.Sprintf("s%d", i)
			// Slow the survivors' first results so the victim finishes a
			// scan (becoming a retained-output holder) and is handed a
			// second task — where the kill failpoint fires.
			c.resultDelay = func(Task) time.Duration { return 100 * time.Millisecond }
		}))
	}
	victim := startWorker(t, addr, func(c *WorkerConfig) {
		c.Name = "victim"
		c.Faults = fault.New()
		if err := c.Faults.Enable(FPWorkerKill, "error*1@1"); err != nil {
			t.Fatal(err)
		}
	})
	res, err := co.Run(context.Background(), Job{
		Resolution: testRes,
		Archive:    &ArchiveJob{Path: path, MapTasks: 6, ReduceTasks: 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	assertEqualBuild(t, res, local)
	if res.Reassigned < 1 {
		t.Errorf("dead owner's buckets not reassigned (reassigned=%d)", res.Reassigned)
	}
	if res.Retries < 1 {
		t.Errorf("dead worker's scans not re-queued (retries=%d)", res.Retries)
	}
	if err := <-victim; !errors.Is(err, ErrKilled) {
		t.Errorf("victim exit: %v, want ErrKilled", err)
	}
	for i, ch := range survivors {
		if err := <-ch; err != nil {
			t.Errorf("survivor %d: %v", i, err)
		}
	}
}

// TestPeerShuffleConnectionFailpoints arms the peer-stream failpoints on
// both workers — the first dials fail, then an injected write error drops
// an established stream mid-shuffle — and asserts the reconnect-and-replay
// path converges to the exact single-process build, with the replayed
// duplicates counted and dropped.
func TestPeerShuffleConnectionFailpoints(t *testing.T) {
	path, local := archiveFixture(t)
	co := newTestCoordinator(t, func(c *Config) { c.MinWorkers = 2 })
	addr := co.Addr().String()
	regs := make([]*obs.Registry, 2)
	var chans []chan error
	for i := 0; i < 2; i++ {
		i := i
		regs[i] = obs.NewRegistry()
		faults := fault.New()
		if err := faults.Enable(FPPeerDial, "error*2"); err != nil {
			t.Fatal(err)
		}
		if err := faults.Enable(FPPeerWrite, "error*1@2"); err != nil {
			t.Fatal(err)
		}
		chans = append(chans, startWorker(t, addr, func(c *WorkerConfig) {
			c.Name = fmt.Sprintf("f%d", i)
			c.Obs = regs[i]
			c.Faults = faults
		}))
	}
	res, err := co.Run(context.Background(), Job{
		Resolution: testRes,
		Archive:    &ArchiveJob{Path: path, MapTasks: 4, ReduceTasks: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	assertEqualBuild(t, res, local)
	var dialErrs, writeErrs, dups int64
	for _, reg := range regs {
		dialErrs += reg.Counter(MetricShuffleErrors, obs.Labels{"kind": "dial"}).Value()
		writeErrs += reg.Counter(MetricShuffleErrors, obs.Labels{"kind": "write"}).Value()
		dups += reg.Counter(MetricShuffleFrames, obs.Labels{"event": "duplicate"}).Value()
	}
	if dialErrs < 1 {
		t.Errorf("dial failpoint never fired (dialErrs=%d)", dialErrs)
	}
	if writeErrs < 1 {
		t.Errorf("write failpoint never fired (writeErrs=%d)", writeErrs)
	}
	if writeErrs >= 1 && dups < 1 {
		t.Errorf("mid-stream drop produced no replay duplicates (dups=%d)", dups)
	}
	for i, ch := range chans {
		if err := <-ch; err != nil {
			t.Errorf("worker %d: %v", i, err)
		}
	}
}

// TestClusterNoGoroutineLeaks runs a completed peer-shuffle job and an
// aborted one, then requires the process goroutine count to return to its
// baseline: coordinator teardown must close every worker connection, and
// worker teardown must join the shuffle listener, senders, reducer and
// heartbeat loops.
func TestClusterNoGoroutineLeaks(t *testing.T) {
	path, local := archiveFixture(t)
	// Let goroutines from earlier tests finish winding down first.
	settle := time.Now().Add(2 * time.Second)
	before := runtime.NumGoroutine()
	for time.Now().Before(settle) {
		time.Sleep(25 * time.Millisecond)
		if n := runtime.NumGoroutine(); n < before {
			before = n
		} else {
			break
		}
	}

	run := func(cancelEarly bool) {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		co := newTestCoordinator(t, func(c *Config) { c.MinWorkers = 2 })
		addr := co.Addr().String()
		w1 := startWorker(t, addr, func(c *WorkerConfig) { c.Name = "l1" })
		w2 := startWorker(t, addr, func(c *WorkerConfig) { c.Name = "l2" })
		if cancelEarly {
			go func() {
				time.Sleep(20 * time.Millisecond)
				cancel()
			}()
		}
		res, err := co.Run(ctx, Job{
			Resolution: testRes,
			Archive:    &ArchiveJob{Path: path, MapTasks: 4, ReduceTasks: 4},
		})
		if !cancelEarly {
			if err != nil {
				t.Fatal(err)
			}
			assertEqualBuild(t, res, local)
		}
		// Workers must return whichever way the job ended; on an abort
		// their exit error is the severed connection.
		for _, ch := range []chan error{w1, w2} {
			select {
			case <-ch:
			case <-time.After(15 * time.Second):
				t.Fatal("worker did not exit after job teardown")
			}
		}
	}
	run(false)
	run(true)

	deadline := time.Now().Add(10 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(25 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutine leak: %d at baseline, %d after\n%s", before, runtime.NumGoroutine(), buf[:n])
}
