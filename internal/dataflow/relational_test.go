package dataflow

import (
	"fmt"
	"sort"
	"testing"
)

func TestUnion(t *testing.T) {
	ctx := NewContext(2)
	a := Parallelize(ctx, []int{1, 2, 3}, 2)
	b := Parallelize(ctx, []int{4, 5}, 1)
	u := Union(a, b, "union")
	if u.NumPartitions() != 3 {
		t.Errorf("partitions %d, want 3", u.NumPartitions())
	}
	got, err := Collect(u)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != "[1 2 3 4 5]" {
		t.Errorf("union %v", got)
	}
}

func TestDistinct(t *testing.T) {
	ctx := NewContext(4)
	var data []int
	for i := 0; i < 1000; i++ {
		data = append(data, i%37)
	}
	d := Distinct(Parallelize(ctx, data, 8), "distinct", 4)
	got, err := Collect(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 37 {
		t.Fatalf("distinct produced %d values, want 37", len(got))
	}
	sort.Ints(got)
	for i, v := range got {
		if v != i {
			t.Fatalf("missing value %d", i)
		}
	}
}

func TestCountByKey(t *testing.T) {
	ctx := NewContext(4)
	var pairs []Pair[string, int]
	for i := 0; i < 120; i++ {
		pairs = append(pairs, Pair[string, int]{Key: []string{"a", "b", "c"}[i%3], Value: i})
	}
	counts, err := Collect(CountByKey(Parallelize(ctx, pairs, 6), "count", 3))
	if err != nil {
		t.Fatal(err)
	}
	if len(counts) != 3 {
		t.Fatalf("keys %d", len(counts))
	}
	for _, c := range counts {
		if c.Value != 40 {
			t.Errorf("key %s count %d, want 40", c.Key, c.Value)
		}
	}
}

func TestBroadcastJoin(t *testing.T) {
	ctx := NewContext(2)
	pairs := []Pair[int, string]{
		{Key: 1, Value: "x"}, {Key: 2, Value: "y"}, {Key: 3, Value: "z"},
	}
	small := map[int]string{1: "ONE", 3: "THREE"}
	joined := BroadcastJoin(Parallelize(ctx, pairs, 2), "bjoin", small,
		func(k int, v, s string) string { return fmt.Sprintf("%d:%s:%s", k, v, s) })
	got, err := Collect(joined)
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(got)
	want := []string{"1:x:ONE", "3:z:THREE"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("broadcast join %v, want %v", got, want)
	}
}

func TestJoinInner(t *testing.T) {
	ctx := NewContext(4)
	left := Parallelize(ctx, []Pair[int, string]{
		{Key: 1, Value: "l1"}, {Key: 2, Value: "l2"}, {Key: 2, Value: "l2b"}, {Key: 9, Value: "orphan"},
	}, 2)
	right := Parallelize(ctx, []Pair[int, string]{
		{Key: 1, Value: "r1"}, {Key: 2, Value: "r2"}, {Key: 7, Value: "orphan"},
	}, 3)
	rows, err := Collect(Join(left, right, "join", 3))
	if err != nil {
		t.Fatal(err)
	}
	var flat []string
	for _, r := range rows {
		flat = append(flat, fmt.Sprintf("%d/%s/%s", r.Key, r.Left, r.Right))
	}
	sort.Strings(flat)
	want := []string{"1/l1/r1", "2/l2/r2", "2/l2b/r2"}
	if fmt.Sprint(flat) != fmt.Sprint(want) {
		t.Errorf("join %v, want %v", flat, want)
	}
}

func TestJoinManyToMany(t *testing.T) {
	ctx := NewContext(2)
	left := Parallelize(ctx, []Pair[int, int]{{Key: 5, Value: 1}, {Key: 5, Value: 2}}, 1)
	right := Parallelize(ctx, []Pair[int, int]{{Key: 5, Value: 10}, {Key: 5, Value: 20}, {Key: 5, Value: 30}}, 1)
	rows, err := Collect(Join(left, right, "m2m", 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Errorf("many-to-many join produced %d rows, want 6", len(rows))
	}
}

func TestJoinEmptySides(t *testing.T) {
	ctx := NewContext(2)
	left := Parallelize(ctx, []Pair[int, int]{{Key: 1, Value: 1}}, 1)
	empty := Parallelize(ctx, []Pair[int, int]{}, 1)
	rows, err := Collect(Join(left, empty, "joinEmpty", 2))
	if err != nil || len(rows) != 0 {
		t.Errorf("join with empty side: %v, %v", rows, err)
	}
}

func TestJoinPropagatesErrors(t *testing.T) {
	ctx := NewContext(2)
	bad := Map(Parallelize(ctx, []int{1}, 1), "boom", func(int) Pair[int, int] { panic("die") })
	right := Parallelize(ctx, []Pair[int, int]{{Key: 1, Value: 1}}, 1)
	if _, err := Collect(Join(bad, right, "joinErr", 2)); err == nil {
		t.Error("join must propagate upstream panics")
	}
}
