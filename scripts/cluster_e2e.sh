#!/bin/sh
# Loopback cluster end-to-end smoke: builds polbuild + polworker, runs a
# distributed synthetic build with two workers — one killed mid-task by a
# failpoint — and checks that the job completes via re-queue with the same
# group count as a single-process build of the same fleet. Run from the
# repository root:
#
#   ./scripts/cluster_e2e.sh
set -e

tmp="$(mktemp -d)"
w1=""
w2=""
cleanup() {
	[ -n "$w1" ] && kill "$w1" 2>/dev/null
	[ -n "$w2" ] && kill "$w2" 2>/dev/null
	rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp" ./cmd/polbuild ./cmd/polworker

addr="127.0.0.1:$((7900 + $$ % 100))"

"$tmp/polbuild" -synthetic -vessels 16 -days 4 -res 6 \
	-out "$tmp/local.polinv" >"$tmp/local.log" 2>&1

"$tmp/polworker" -coordinator "$addr" -v >"$tmp/w1.log" 2>&1 &
w1=$!
"$tmp/polworker" -coordinator "$addr" -failpoint 'cluster.worker.kill=error*1' >"$tmp/w2.log" 2>&1 &
w2=$!

"$tmp/polbuild" -synthetic -vessels 16 -days 4 -res 6 \
	-coordinator "$addr" -workers 2 -v \
	-out "$tmp/dist.polinv" >"$tmp/dist.log" 2>&1 || {
	echo "distributed build failed:"
	cat "$tmp/dist.log"
	exit 1
}

wait "$w1" || { echo "surviving worker failed:"; cat "$tmp/w1.log"; exit 1; }
if wait "$w2"; then
	echo "killed worker exited 0, failpoint did not fire:"
	cat "$tmp/w2.log"
	exit 1
fi
w1=""
w2=""

grep -q 're-queued' "$tmp/dist.log" || {
	echo "killed worker's task was not re-queued:"
	cat "$tmp/dist.log"
	exit 1
}

local_groups="$(sed -n 's/.*wrote .* (\([0-9]*\) groups.*/\1/p' "$tmp/local.log")"
dist_groups="$(sed -n 's/.*wrote .* (\([0-9]*\) groups.*/\1/p' "$tmp/dist.log")"
if [ -z "$local_groups" ] || [ "$local_groups" -lt 1 ] || [ "$local_groups" != "$dist_groups" ]; then
	echo "distributed build diverged: local=$local_groups groups, distributed=$dist_groups groups"
	exit 1
fi

# Distributed-trace continuity: the coordinator logs the job's trace ID
# and stamps it into every task frame; the surviving worker must have
# joined the same trace when executing its tasks.
job_trace="$(sed -n 's/.*trace \([0-9a-f]\{32\}\).*/\1/p' "$tmp/dist.log" | head -1)"
if [ -z "$job_trace" ]; then
	echo "coordinator logged no job trace ID:"
	cat "$tmp/dist.log"
	exit 1
fi
grep -q "trace $job_trace" "$tmp/w1.log" || {
	echo "worker never joined job trace $job_trace:"
	grep 'trace' "$tmp/w1.log" || cat "$tmp/w1.log"
	exit 1
}

echo "cluster e2e smoke passed: $dist_groups groups, killed worker re-queued, trace $job_trace spans coordinator+worker"
