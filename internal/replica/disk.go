package replica

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/patternsoflife/pol/internal/ingest"
	"github.com/patternsoflife/pol/internal/inventory"
	"github.com/patternsoflife/pol/internal/obs"
	"github.com/patternsoflife/pol/internal/segment"
)

// DiskOptions configures a DiskReplica.
type DiskOptions struct {
	// Primary is the primary's base HTTP URL, or a comma-separated list
	// of candidates. With more than one, each sync cycle picks the
	// endpoint advertising the highest replication term; endpoints below
	// the persisted high-water mark are stale primaries and are rejected.
	Primary string
	// Resolution must match the primary's; a mismatch is terminal.
	Resolution int
	// Dir holds the local segment files (required). At most the current
	// and previous generation live here.
	Dir string
	// PollEvery is the manifest poll cadence (default 2s).
	PollEvery time.Duration
	// MaxPinned caps each reader's decompressed-shard LRU
	// (default segment.DefaultMaxPinned).
	MaxPinned int
	// Client is the HTTP client (default &http.Client{}).
	Client *http.Client
	// Metrics, when non-nil, registers the pol_segment_* series and the
	// disk-replica sync counters.
	Metrics *obs.Registry
	// Logf, when non-nil, receives sync warnings.
	Logf func(format string, args ...any)
}

func (o DiskOptions) withDefaults() DiskOptions {
	if o.Resolution <= 0 {
		o.Resolution = 6
	}
	if o.PollEvery <= 0 {
		o.PollEvery = 2 * time.Second
	}
	if o.Client == nil {
		o.Client = &http.Client{}
	}
	return o
}

// DiskReplica mirrors a primary's columnar segment checkpoints and serves
// queries straight from the mapped file — cold start is O(index), not
// O(inventory), and steady-state RSS is bounded by the shard LRU instead
// of the whole heap inventory.
//
// Sync is a per-shard delta: each cycle fetches the remote segment's
// 40-byte tail and footer index over HTTP Range requests, reuses every
// block whose (shard, CRC32C, length) already matches the local
// generation, Range-fetches only the changed blocks (contiguous runs
// coalesce into one request), and atomically installs the reassembled
// file after verifying its whole-file CRC32C against the manifest.
//
// Generation swap keeps the previous reader open until the following
// swap, so queries that loaded the old reader just before a swap keep a
// valid mapping for at least one full sync cycle.
type DiskReplica struct {
	opt       DiskOptions
	segm      *segment.Metrics
	endpoints []string
	endpoint  atomic.Int64 // index of the endpoint last synced from

	cur        atomic.Pointer[segment.Reader]
	generation atomic.Uint64

	mu      sync.Mutex
	retired *segment.Reader

	// Term high-water mark, persisted in Dir so a restarted disk replica
	// keeps rejecting a demoted primary. Guarded by hwMu for
	// raise-and-persist; read lock-free.
	hwMu   sync.Mutex
	hwTerm atomic.Uint64
	hwNode atomic.Uint64

	syncs          atomic.Int64
	syncFailures   atomic.Int64
	blockFetches   atomic.Int64
	blockReuses    atomic.Int64
	bytesFetched   atomic.Int64
	bytesReused    atomic.Int64
	crcRejects     atomic.Int64
	fencingRejects atomic.Int64

	lastErr atomic.Pointer[string]
}

// termPath is where the disk replica persists its term high-water mark.
func (d *DiskReplica) termPath() string { return filepath.Join(d.opt.Dir, "pol.term") }

// raiseHW lifts the persisted term high-water mark to (term, node) if it
// beats the current one.
func (d *DiskReplica) raiseHW(term, node uint64) error {
	if term == 0 {
		return nil
	}
	d.hwMu.Lock()
	defer d.hwMu.Unlock()
	if !ingest.TermBeats(term, node, d.hwTerm.Load(), d.hwNode.Load()) {
		return nil
	}
	if err := writeTermFile(d.termPath(), term, node); err != nil {
		return fmt.Errorf("replica: persist term high-water: %w", err)
	}
	d.hwTerm.Store(term)
	d.hwNode.Store(node)
	return nil
}

// NewDisk builds a disk replica rooted at opt.Dir.
func NewDisk(opt DiskOptions) (*DiskReplica, error) {
	opt = opt.withDefaults()
	if opt.Primary == "" {
		return nil, fmt.Errorf("replica: primary URL required")
	}
	if opt.Dir == "" {
		return nil, fmt.Errorf("replica: segment dir required")
	}
	if err := os.MkdirAll(opt.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("replica: %w", err)
	}
	var endpoints []string
	for _, ep := range strings.Split(opt.Primary, ",") {
		ep = strings.TrimRight(strings.TrimSpace(ep), "/")
		if ep != "" {
			endpoints = append(endpoints, ep)
		}
	}
	if len(endpoints) == 0 {
		return nil, fmt.Errorf("replica: primary URL required")
	}
	d := &DiskReplica{opt: opt, segm: segment.NewMetrics(opt.Metrics), endpoints: endpoints}
	term, node, err := readTermFile(d.termPath())
	if err != nil {
		return nil, err
	}
	d.hwTerm.Store(term)
	d.hwNode.Store(node)
	if reg := opt.Metrics; reg != nil {
		reg.CounterFunc("pol_segment_replica_syncs_total", nil, func() float64 { return float64(d.syncs.Load()) })
		reg.CounterFunc("pol_segment_replica_sync_failures_total", nil, func() float64 { return float64(d.syncFailures.Load()) })
		reg.CounterFunc("pol_segment_replica_block_fetches_total", nil, func() float64 { return float64(d.blockFetches.Load()) })
		reg.CounterFunc("pol_segment_replica_block_reuses_total", nil, func() float64 { return float64(d.blockReuses.Load()) })
		reg.CounterFunc("pol_segment_replica_bytes_fetched_total", nil, func() float64 { return float64(d.bytesFetched.Load()) })
		reg.CounterFunc("pol_segment_replica_bytes_reused_total", nil, func() float64 { return float64(d.bytesReused.Load()) })
		reg.CounterFunc("pol_segment_replica_crc_rejects_total", nil, func() float64 { return float64(d.crcRejects.Load()) })
		reg.CounterFunc("pol_segment_replica_fencing_rejects_total", nil, func() float64 { return float64(d.fencingRejects.Load()) })
		reg.GaugeFunc("pol_segment_replica_term", nil, func() float64 { return float64(d.hwTerm.Load()) })
		reg.GaugeFunc("pol_segment_replica_generation", nil, func() float64 { return float64(d.generation.Load()) })
	}
	return d, nil
}

func (d *DiskReplica) logf(format string, args ...any) {
	if d.opt.Logf != nil {
		d.opt.Logf(format, args...)
	}
}

// Run polls the primary until ctx ends or a terminal configuration error
// (resolution mismatch) is hit. Transient sync errors are counted, logged
// and retried on the next poll.
func (d *DiskReplica) Run(ctx context.Context) error {
	for ctx.Err() == nil {
		if err := d.Sync(ctx); err != nil {
			if errors.Is(err, errTerminal) || ctx.Err() != nil {
				return err
			}
			d.logf("disk replica sync: %v", err)
		}
		select {
		case <-ctx.Done():
		case <-time.After(d.opt.PollEvery):
		}
	}
	return ctx.Err()
}

// Sync runs one delta-sync cycle: a no-op when the local generation
// already matches the primary's newest segment, otherwise it assembles
// and installs the new generation. Exported so one-shot bootstraps and
// tests can drive the cycle directly.
func (d *DiskReplica) Sync(ctx context.Context) (err error) {
	defer func() {
		if err != nil {
			d.syncFailures.Add(1)
			s := err.Error()
			d.lastErr.Store(&s)
		} else {
			d.lastErr.Store(nil)
		}
	}()
	man, base, err := d.pickBest(ctx)
	if err != nil {
		return err
	}
	if man.Resolution != d.opt.Resolution {
		return fmt.Errorf("%w: primary resolution %d != replica resolution %d",
			errTerminal, man.Resolution, d.opt.Resolution)
	}
	var g *ingest.ReplGenInfo
	for i := range man.Generations {
		if man.Generations[i].Seg != "" {
			g = &man.Generations[i]
			break
		}
	}
	if g == nil {
		return fmt.Errorf("replica: primary has no segment generation yet")
	}
	if d.generation.Load() == g.Gen && d.cur.Load() != nil {
		return nil
	}
	path := filepath.Join(d.opt.Dir, g.Seg)
	if sum, size, err := inventory.ChecksumFile(path); err == nil && sum == g.SegCRC && size == g.SegSize {
		// Local copy already verified byte-identical (restart, or the swap
		// itself failed last cycle): install without touching the network.
		return d.install(path, g.Gen)
	}
	if err := d.assemble(ctx, base, g, path); err != nil {
		return err
	}
	return d.install(path, g.Gen)
}

// pickBest fetches every endpoint's manifest and returns the one with
// the highest (term, node) pair, raising the high-water mark to match.
// Manifests below the mark come from a stale primary: they are rejected,
// never synced from, even if every fresher endpoint is down.
func (d *DiskReplica) pickBest(ctx context.Context) (ingest.ReplManifest, string, error) {
	var (
		bestMan            ingest.ReplManifest
		best               = -1
		bestTerm, bestNode uint64
		firstErr           error
	)
	for i, ep := range d.endpoints {
		man, rt, rn, err := d.fetchManifest(ctx, ep)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if ingest.TermBeats(d.hwTerm.Load(), d.hwNode.Load(), rt, rn) {
			d.fencingRejects.Add(1)
			if firstErr == nil {
				firstErr = fmt.Errorf("replica: %s serves term %d below high-water %d", ep, rt, d.hwTerm.Load())
			}
			continue
		}
		if best < 0 || ingest.TermBeats(rt, rn, bestTerm, bestNode) {
			best, bestTerm, bestNode, bestMan = i, rt, rn, man
		}
	}
	if best < 0 {
		if firstErr == nil {
			firstErr = fmt.Errorf("replica: no reachable endpoint")
		}
		return ingest.ReplManifest{}, "", firstErr
	}
	if err := d.raiseHW(bestTerm, bestNode); err != nil {
		return ingest.ReplManifest{}, "", err
	}
	d.endpoint.Store(int64(best))
	return bestMan, d.endpoints[best], nil
}

// assemble builds g's segment at path from Range requests plus every
// reusable block of the currently installed generation. The write aborts
// (and installs nothing) unless the assembled file's whole-file CRC32C
// and size match the manifest exactly.
func (d *DiskReplica) assemble(ctx context.Context, endpoint string, g *ingest.ReplGenInfo, path string) error {
	base := fmt.Sprintf("%s/v1/repl/segment/%d", endpoint, g.Gen)
	if g.SegSize < segment.TailLen {
		return fmt.Errorf("replica: manifest segment size %d below tail size", g.SegSize)
	}
	tailB, err := d.getRange(ctx, base, g.SegSize-segment.TailLen, g.SegSize-1)
	if err != nil {
		return err
	}
	tail, err := segment.ParseTail(tailB, g.SegSize)
	if err != nil {
		return err
	}
	idxB, err := d.getRange(ctx, base, tail.IndexOff, tail.IndexOff+int64(tail.IndexLen)-1)
	if err != nil {
		return err
	}
	blocks, err := segment.ParseIndex(idxB, tail)
	if err != nil {
		return err
	}
	headB, err := d.getRange(ctx, base, 0, int64(tail.HeaderLen)-1)
	if err != nil {
		return err
	}
	if segment.CRC(headB) != tail.HeaderCRC {
		d.crcRejects.Add(1)
		return fmt.Errorf("replica: fetched segment header: %w", segment.ErrChecksum)
	}

	// Delta core: any block the installed generation already holds with
	// the same compressed bytes (shard + CRC32C + lengths) is copied
	// locally instead of fetched.
	old := d.cur.Load()
	oldBlocks := map[int]segment.BlockInfo{}
	if old != nil {
		for _, b := range old.Blocks() {
			oldBlocks[b.Shard] = b
		}
	}
	got := make(map[int][]byte, len(blocks))
	var need []segment.BlockInfo
	for _, b := range blocks {
		if ob, ok := oldBlocks[b.Shard]; ok && ob.CRC == b.CRC && ob.CompLen == b.CompLen && ob.RawLen == b.RawLen {
			if data, err := old.BlockBytes(b.Shard); err == nil {
				got[b.Shard] = data
				d.blockReuses.Add(1)
				d.bytesReused.Add(int64(b.CompLen))
				continue
			}
		}
		need = append(need, b)
	}
	// Fetch the rest, coalescing byte-adjacent blocks into one Range
	// request each — a cold bootstrap is a handful of big reads, an
	// incremental sync only the changed shards.
	for i := 0; i < len(need); {
		j := i
		end := need[i].Off + int64(need[i].CompLen)
		for j+1 < len(need) && need[j+1].Off == end {
			j++
			end = need[j].Off + int64(need[j].CompLen)
		}
		run, err := d.getRange(ctx, base, need[i].Off, end-1)
		if err != nil {
			return err
		}
		for k := i; k <= j; k++ {
			b := need[k]
			lo := b.Off - need[i].Off
			data := run[lo : lo+int64(b.CompLen)]
			if segment.CRC(data) != b.CRC {
				d.crcRejects.Add(1)
				return fmt.Errorf("replica: fetched block for shard %d: %w", b.Shard, segment.ErrChecksum)
			}
			got[b.Shard] = data
			d.blockFetches.Add(1)
			d.bytesFetched.Add(int64(b.CompLen))
		}
		i = j + 1
	}

	// Reassemble in layout order. The running CRC32C must reproduce the
	// manifest's whole-file checksum or AtomicWrite aborts before rename —
	// a bad assembly can never be installed.
	var sum uint32
	var n int64
	return inventory.AtomicWrite(path, func(w io.Writer) error {
		emit := func(b []byte) error {
			if _, err := w.Write(b); err != nil {
				return err
			}
			sum = crc32.Update(sum, castagnoli, b)
			n += int64(len(b))
			return nil
		}
		if err := emit(headB); err != nil {
			return err
		}
		for _, b := range blocks {
			if err := emit(got[b.Shard]); err != nil {
				return err
			}
		}
		if err := emit(idxB); err != nil {
			return err
		}
		if err := emit(tailB); err != nil {
			return err
		}
		if n != g.SegSize || sum != g.SegCRC {
			d.crcRejects.Add(1)
			return fmt.Errorf("replica: assembled segment crc %08x size %d, manifest says %08x size %d: %w",
				sum, n, g.SegCRC, g.SegSize, segment.ErrChecksum)
		}
		return nil
	})
}

// install opens the assembled file and swaps it in. The displaced reader
// is retired, not closed: it stays valid until the next swap retires its
// successor, giving in-flight queries a full sync cycle of grace.
func (d *DiskReplica) install(path string, gen uint64) error {
	r, err := segment.Open(path, segment.Options{MaxPinned: d.opt.MaxPinned, Metrics: d.segm})
	if err != nil {
		return err
	}
	old := d.cur.Swap(r)
	d.generation.Store(gen)
	d.syncs.Add(1)
	d.mu.Lock()
	prev := d.retired
	d.retired = old
	d.mu.Unlock()
	if prev != nil {
		p := prev.Path()
		prev.Close()
		if p != path && (old == nil || p != old.Path()) {
			_ = os.Remove(p)
		}
	}
	return nil
}

func (d *DiskReplica) fetchManifest(ctx context.Context, endpoint string) (man ingest.ReplManifest, term, node uint64, err error) {
	rctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, endpoint+"/v1/repl/manifest", nil)
	if err != nil {
		return man, 0, 0, err
	}
	// Carrying the high-water mark fences a demoted primary on contact.
	ingest.SetTermHeader(req.Header, d.hwTerm.Load(), d.hwNode.Load())
	resp, err := d.opt.Client.Do(req)
	if err != nil {
		return man, 0, 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return man, 0, 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return man, 0, 0, fmt.Errorf("replica: manifest: %s", resp.Status)
	}
	if err := json.Unmarshal(body, &man); err != nil {
		return man, 0, 0, fmt.Errorf("replica: manifest decode: %w", err)
	}
	term, node = ingest.TermFromHeader(resp.Header)
	return man, term, node, nil
}

// getRange fetches [from, to] (inclusive) of the remote segment. A
// server that answers 200 with the whole file still works: the requested
// window is sliced out.
func (d *DiskReplica) getRange(ctx context.Context, u string, from, to int64) ([]byte, error) {
	if from < 0 || to < from {
		return nil, fmt.Errorf("replica: bad byte range %d-%d", from, to)
	}
	rctx, cancel := context.WithTimeout(ctx, 2*time.Minute)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Range", fmt.Sprintf("bytes=%d-%d", from, to))
	ingest.SetTermHeader(req.Header, d.hwTerm.Load(), d.hwNode.Load())
	resp, err := d.opt.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	want := to - from + 1
	switch resp.StatusCode {
	case http.StatusPartialContent:
		if int64(len(body)) != want {
			return nil, fmt.Errorf("replica: range %d-%d answered %d bytes", from, to, len(body))
		}
		return body, nil
	case http.StatusOK:
		if int64(len(body)) < to+1 {
			return nil, fmt.Errorf("replica: full-body fallback shorter (%d bytes) than range end %d", len(body), to)
		}
		return body[from : to+1], nil
	default:
		return nil, fmt.Errorf("replica: range %d-%d: %s", from, to, resp.Status)
	}
}

// Reader returns the currently installed segment reader (nil before the
// first successful sync).
func (d *DiskReplica) Reader() *segment.Reader { return d.cur.Load() }

// Generation returns the installed checkpoint generation (0 before the
// first sync).
func (d *DiskReplica) Generation() uint64 { return d.generation.Load() }

// Inventory implements api.Source: queries resolve against the mapped
// segment; before the first sync an empty inventory answers.
func (d *DiskReplica) Inventory() inventory.View {
	if r := d.cur.Load(); r != nil {
		return r
	}
	return inventory.New(inventory.BuildInfo{Resolution: d.opt.Resolution})
}

// ReadyDetail implements the obs.ReadyzDetailHandler contract: ready once
// a generation is installed; degraded detail carries the last sync error.
func (d *DiskReplica) ReadyDetail() (bool, string) {
	if d.cur.Load() == nil {
		return false, "disk replica: no segment generation installed yet"
	}
	if p := d.lastErr.Load(); p != nil {
		return true, "degraded: last sync failed: " + *p
	}
	return true, ""
}

// DiskStatus is the JSON document served by StatusHandler.
type DiskStatus struct {
	Primary        string `json:"primary"`
	Endpoints      int    `json:"endpoints"`
	Term           uint64 `json:"term"`
	Generation     uint64 `json:"generation"`
	Groups         int64  `json:"groups"`
	Syncs          int64  `json:"syncs"`
	SyncFailures   int64  `json:"sync_failures"`
	BlockFetches   int64  `json:"block_fetches"`
	BlockReuses    int64  `json:"block_reuses"`
	BytesFetched   int64  `json:"bytes_fetched"`
	BytesReused    int64  `json:"bytes_reused"`
	CRCRejects     int64  `json:"crc_rejects"`
	FencingRejects int64  `json:"fencing_rejects"`
	LastError      string `json:"last_error,omitempty"`
}

// StatusSnapshot collects the current sync counters.
func (d *DiskReplica) StatusSnapshot() DiskStatus {
	s := DiskStatus{
		Primary:        d.endpoints[d.endpoint.Load()],
		Endpoints:      len(d.endpoints),
		Term:           d.hwTerm.Load(),
		Generation:     d.generation.Load(),
		Syncs:          d.syncs.Load(),
		SyncFailures:   d.syncFailures.Load(),
		BlockFetches:   d.blockFetches.Load(),
		BlockReuses:    d.blockReuses.Load(),
		BytesFetched:   d.bytesFetched.Load(),
		BytesReused:    d.bytesReused.Load(),
		CRCRejects:     d.crcRejects.Load(),
		FencingRejects: d.fencingRejects.Load(),
	}
	if r := d.cur.Load(); r != nil {
		s.Groups = int64(r.Len())
	}
	if p := d.lastErr.Load(); p != nil {
		s.LastError = *p
	}
	return s
}

// StatusHandler serves the sync counters as JSON (/v1/replica/status on a
// disk-replica daemon).
func (d *DiskReplica) StatusHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(d.StatusSnapshot())
	})
}

// Close closes the installed and retired readers. Cancel Run first.
func (d *DiskReplica) Close() error {
	d.mu.Lock()
	prev := d.retired
	d.retired = nil
	d.mu.Unlock()
	if prev != nil {
		prev.Close()
	}
	if r := d.cur.Swap(nil); r != nil {
		return r.Close()
	}
	return nil
}
