// Command polbuild runs the Patterns-of-Life pipeline over an AIS archive
// and writes the global inventory file (the paper's methodology, Figure 3).
//
// Usage:
//
//	polbuild -in fleet.nmea -res 6 -out fleet.polinv
//	polbuild -synthetic -vessels 100 -days 30 -res 7 -out synth.polinv
//
// With -coordinator the build is distributed: polbuild listens on the given
// address, waits for -workers polworker processes to join, splits the input
// into map tasks, and reduces the partial inventories they return:
//
//	polbuild -synthetic -vessels 500 -coordinator :7700 -workers 4 -out synth.polinv
//	polbuild -in fleet.nmea -coordinator :7700 -workers 2 -out fleet.polinv
//
// Distributed archive builds shuffle worker-to-worker by default: the
// coordinator assigns each reduce bucket an owning worker and the workers
// stream map output directly to the owner (-shuffle peer). Pass
// -shuffle coordinator to relay every shuffle byte through this process
// instead (the pre-PR9 fabric, kept for comparison), and -reduce-tasks to
// size the bucket count.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"

	"github.com/patternsoflife/pol/internal/cluster"
	"github.com/patternsoflife/pol/internal/dataflow"
	"github.com/patternsoflife/pol/internal/feed"
	"github.com/patternsoflife/pol/internal/inventory"
	"github.com/patternsoflife/pol/internal/model"
	"github.com/patternsoflife/pol/internal/obs/trace"
	"github.com/patternsoflife/pol/internal/pipeline"
	"github.com/patternsoflife/pol/internal/ports"
	"github.com/patternsoflife/pol/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("polbuild: ")

	var (
		in          = flag.String("in", "", "input timestamped-NMEA archive (from polgen or a provider)")
		synthetic   = flag.Bool("synthetic", false, "generate the dataset in-process instead of reading -in")
		vessels     = flag.Int("vessels", 100, "synthetic fleet size")
		days        = flag.Int("days", 30, "synthetic days")
		seed        = flag.Int64("seed", 1, "synthetic seed")
		res         = flag.Int("res", 6, "hexgrid resolution of the inventory (paper: 6 or 7)")
		out         = flag.String("out", "inventory.polinv", "output inventory file")
		par         = flag.Int("parallelism", runtime.GOMAXPROCS(0), "worker pool width")
		coordinator = flag.String("coordinator", "", "distribute the build: listen on this address for polworker processes")
		workers     = flag.Int("workers", 1, "distributed mode: wait for this many workers before dispatching")
		mapTasks    = flag.Int("map-tasks", 0, "distributed mode: map task count (default 4 per worker)")
		reduceTasks = flag.Int("reduce-tasks", 0, "distributed mode: shuffle bucket count (default 2 per worker)")
		shuffle     = flag.String("shuffle", cluster.ShufflePeer, "distributed archive shuffle fabric: peer (workers stream buckets directly) or coordinator (legacy relay)")
		verbose     = flag.Bool("v", false, "print stage metrics (local) or scheduling progress (distributed)")
	)
	flag.Parse()

	if *coordinator != "" {
		runDistributed(distOpts{
			addr: *coordinator, workers: *workers,
			mapTasks: *mapTasks, reduceTasks: *reduceTasks, shuffle: *shuffle,
			in: *in, synthetic: *synthetic,
			vessels: *vessels, days: *days, seed: *seed,
			res: *res, out: *out, verbose: *verbose,
		})
		return
	}

	gaz := ports.Default()
	portIdx := ports.NewIndex(gaz, ports.IndexResolution)
	ctx := dataflow.NewContext(*par)

	var records *dataflow.Dataset[model.PositionRecord]
	var static map[uint32]model.VesselInfo
	desc := ""

	switch {
	case *synthetic:
		s, err := sim.New(sim.Config{Vessels: *vessels, Days: *days, Seed: *seed}, gaz)
		if err != nil {
			log.Fatal(err)
		}
		static = s.Fleet().StaticIndex()
		n := len(s.Fleet().Vessels)
		records = dataflow.Generate(ctx, n, func(part int) []model.PositionRecord {
			recs, _ := s.VesselTrack(part)
			return recs
		})
		desc = "synthetic: " + s.Config().Describe()
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		r := feed.NewReader(f)
		all, err := r.ReadAll()
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		st := r.Stats()
		log.Printf("ingest: %d lines, %d positions, %d statics, %d bad lines, %d bad NMEA",
			st.Lines, st.Positions, st.Statics, st.BadLines, st.BadNMEA)
		static = r.StaticsAsVesselInfo()
		records = dataflow.Parallelize(ctx, all, *par*4)
		desc = "archive: " + *in
	default:
		log.Fatal("need -in FILE or -synthetic (see -h)")
	}

	result, err := pipeline.Run(records, static, portIdx, pipeline.Options{
		Resolution:  *res,
		Description: desc,
	})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("pipeline: %s", result.Stats)
	if *verbose {
		fmt.Fprint(os.Stderr, ctx.Metrics().String())
	}
	report(result.Inventory, *out)
}

type distOpts struct {
	addr        string
	workers     int
	mapTasks    int
	reduceTasks int
	shuffle     string
	in          string
	synthetic   bool
	vessels     int
	days        int
	seed        int64
	res         int
	out         string
	verbose     bool
}

// runDistributed coordinates a cluster build: polworker processes dial in,
// execute map tasks, and this process reduces their partial inventories.
func runDistributed(o distOpts) {
	job := cluster.Job{Resolution: o.res}
	switch {
	case o.synthetic:
		spec := cluster.SpecFromConfig(sim.Config{Vessels: o.vessels, Days: o.days, Seed: o.seed})
		job.Synthetic = &cluster.SyntheticJob{Spec: spec, Tasks: o.mapTasks}
		job.Description = fmt.Sprintf("synthetic (distributed): %d vessels, %d days, seed %d",
			o.vessels, o.days, o.seed)
	case o.in != "":
		job.Archive = &cluster.ArchiveJob{
			Path: o.in, MapTasks: o.mapTasks,
			ReduceTasks: o.reduceTasks, Shuffle: o.shuffle,
		}
		job.Description = "archive (distributed): " + o.in
	default:
		log.Fatal("need -in FILE or -synthetic (see -h)")
	}

	tr := trace.New(trace.Options{Service: "polbuild"})
	cfg := cluster.Config{Addr: o.addr, MinWorkers: o.workers, Tracer: tr}
	if o.verbose {
		cfg.Logf = log.Printf
	}
	co, err := cluster.NewCoordinator(cfg)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("coordinating on %s, waiting for %d worker(s)", co.Addr(), o.workers)
	// Root the build's trace here so the coordinator's job span — and,
	// through the traceparent stamped into every task frame, the workers'
	// execution spans — all join one trace, greppable across process logs.
	span := tr.StartRoot("polbuild.distributed")
	log.Printf("trace %s", span.Trace)
	result, err := co.Run(trace.ContextWith(context.Background(), span), job)
	span.SetError(err)
	span.Finish()
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("pipeline: %s", result.Stats)
	log.Printf("cluster: %d tasks, %d retries, %d duplicate completions, %d bucket reassignments",
		result.Tasks, result.Retries, result.Duplicates, result.Reassigned)
	if job.Archive != nil {
		log.Printf("ingest: %d lines, %d positions, %d statics, %d bad lines, %d bad NMEA",
			result.Feed.Lines, result.Feed.Positions, result.Feed.Statics,
			result.Feed.BadLines, result.Feed.BadNMEA)
	}
	report(result.Inventory, o.out)
}

// report prints the inventory summary and writes the POLINV file — shared
// by the local and distributed paths so both modes produce identical output.
func report(inv *inventory.Inventory, out string) {
	for _, gs := range inventory.AllGroupSets {
		log.Printf("groups %v: %d (compression %.4f%%)",
			gs, inv.CountGroups(gs), inv.Compression(gs)*100)
	}
	log.Printf("cells: %d (global H3 utilization %.6f%%)",
		len(inv.Cells(inventory.GSCell)), inv.Utilization()*100)
	if err := inventory.WriteFile(inv, out); err != nil {
		log.Fatal(err)
	}
	fi, _ := os.Stat(out)
	log.Printf("wrote %s (%d groups, %.1f MiB)", out, inv.Len(), float64(fi.Size())/(1<<20))
}
