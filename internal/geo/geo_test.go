package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s: got %v, want %v (tol %v)", msg, got, want, tol)
	}
}

func TestHaversineKnownDistances(t *testing.T) {
	cases := []struct {
		name string
		a, b LatLng
		want float64 // metres
		tol  float64
	}{
		{"same point", LatLng{10, 20}, LatLng{10, 20}, 0, 0.001},
		{"one degree of latitude", LatLng{0, 0}, LatLng{1, 0}, 111195, 50},
		{"one degree of longitude at equator", LatLng{0, 0}, LatLng{0, 1}, 111195, 50},
		{"quarter circumference", LatLng{0, 0}, LatLng{0, 90}, math.Pi / 2 * EarthRadiusMeters, 1},
		{"antipodal", LatLng{0, 0}, LatLng{0, 180}, math.Pi * EarthRadiusMeters, 1},
		{"rotterdam to singapore", LatLng{51.95, 4.14}, LatLng{1.264, 103.84}, 10500e3, 150e3},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			approx(t, Haversine(c.a, c.b), c.want, c.tol, "haversine")
		})
	}
}

func TestHaversineSymmetry(t *testing.T) {
	f := func(lat1, lng1, lat2, lng2 float64) bool {
		a := LatLng{Lat: math.Mod(lat1, 90), Lng: math.Mod(lng1, 180)}
		b := LatLng{Lat: math.Mod(lat2, 90), Lng: math.Mod(lng2, 180)}
		d1, d2 := Haversine(a, b), Haversine(b, a)
		return math.Abs(d1-d2) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTriangleInequality(t *testing.T) {
	f := func(lat1, lng1, lat2, lng2, lat3, lng3 float64) bool {
		a := LatLng{Lat: math.Mod(lat1, 90), Lng: math.Mod(lng1, 180)}
		b := LatLng{Lat: math.Mod(lat2, 90), Lng: math.Mod(lng2, 180)}
		c := LatLng{Lat: math.Mod(lat3, 90), Lng: math.Mod(lng3, 180)}
		return Haversine(a, c) <= Haversine(a, b)+Haversine(b, c)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInitialBearingCardinal(t *testing.T) {
	origin := LatLng{0, 0}
	approx(t, InitialBearing(origin, LatLng{10, 0}), 0, 1e-9, "north")
	approx(t, InitialBearing(origin, LatLng{0, 10}), 90, 1e-9, "east")
	approx(t, InitialBearing(origin, LatLng{-10, 0}), 180, 1e-9, "south")
	approx(t, InitialBearing(origin, LatLng{0, -10}), 270, 1e-9, "west")
	approx(t, InitialBearing(origin, origin), 0, 0, "self")
}

func TestDestinationRoundTrip(t *testing.T) {
	f := func(lat, lng, bearing, distKm float64) bool {
		origin := LatLng{Lat: math.Mod(lat, 60), Lng: math.Mod(lng, 180)}
		bearing = NormalizeAngle(bearing)
		dist := math.Abs(math.Mod(distKm, 2000)) * 1000
		dest := Destination(origin, bearing, dist)
		// Distance from origin to destination must equal the requested distance.
		return math.Abs(Haversine(origin, dest)-dist) < 1.0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDestinationBearingConsistency(t *testing.T) {
	origin := LatLng{40, -30}
	for _, bearing := range []float64{0, 45, 90, 135, 225, 310} {
		dest := Destination(origin, bearing, 50000)
		got := InitialBearing(origin, dest)
		approx(t, got, bearing, 0.01, "bearing round trip")
	}
}

func TestInterpolateEndpoints(t *testing.T) {
	a := LatLng{10, 20}
	b := LatLng{-5, 60}
	if Interpolate(a, b, 0) != a {
		t.Error("f=0 should return a")
	}
	if Interpolate(a, b, 1) != b {
		t.Error("f=1 should return b")
	}
	mid := Interpolate(a, b, 0.5)
	approx(t, Haversine(a, mid), Haversine(mid, b), 1e-3, "midpoint equidistant")
}

func TestInterpolateLiesOnGreatCircle(t *testing.T) {
	a := LatLng{51.95, 4.14}
	b := LatLng{40.68, -74.01}
	total := Haversine(a, b)
	prev := a
	var sum float64
	for i := 1; i <= 10; i++ {
		p := Interpolate(a, b, float64(i)/10)
		sum += Haversine(prev, p)
		prev = p
	}
	approx(t, sum, total, 1.0, "chord sum equals great-circle length")
}

func TestCrossTrackDistance(t *testing.T) {
	a := LatLng{0, 0}
	b := LatLng{0, 10}
	// A point north of the equator path is to the left (negative by our sign).
	north := CrossTrackDistance(LatLng{1, 5}, a, b)
	south := CrossTrackDistance(LatLng{-1, 5}, a, b)
	if north >= 0 {
		t.Errorf("point north of eastbound track should be negative (left), got %v", north)
	}
	if south <= 0 {
		t.Errorf("point south of eastbound track should be positive (right), got %v", south)
	}
	approx(t, math.Abs(north), 111195, 100, "one degree cross-track")
	on := CrossTrackDistance(LatLng{0, 5}, a, b)
	approx(t, on, 0, 1e-6, "on-track point")
}

func TestNormalizeLng(t *testing.T) {
	cases := map[float64]float64{
		0: 0, 180: -180, -180: -180, 190: -170, -190: 170, 360: 0, 540: -180, 725: 5,
	}
	for in, want := range cases {
		approx(t, NormalizeLng(in), want, 1e-12, "normalize lng")
	}
}

func TestNormalizeAngle(t *testing.T) {
	cases := map[float64]float64{0: 0, 360: 0, -90: 270, 450: 90, -720: 0, 359.5: 359.5}
	for in, want := range cases {
		approx(t, NormalizeAngle(in), want, 1e-12, "normalize angle")
	}
}

func TestAngleDiff(t *testing.T) {
	cases := []struct{ a, b, want float64 }{
		{0, 0, 0}, {0, 180, 180}, {10, 350, 20}, {350, 10, 20}, {90, 270, 180}, {45, 46, 1},
	}
	for _, c := range cases {
		approx(t, AngleDiff(c.a, c.b), c.want, 1e-9, "angle diff")
	}
}

func TestSpeedKnots(t *testing.T) {
	a := LatLng{0, 0}
	b := Destination(a, 90, 10*MetersPerNauticalMile)
	approx(t, SpeedKnots(a, b, 3600), 10, 0.001, "10 NM in 1 hour")
	if v := SpeedKnots(a, a, 0); v != 0 {
		t.Errorf("zero distance should be 0 knots, got %v", v)
	}
	if v := SpeedKnots(a, b, 0); !math.IsInf(v, 1) {
		t.Errorf("nonzero distance in zero time should be +Inf, got %v", v)
	}
}

func TestValidLatLng(t *testing.T) {
	valid := []LatLng{{0, 0}, {90, 180}, {-90, -180}, {45.5, -122.6}}
	for _, p := range valid {
		if !p.Valid() {
			t.Errorf("%v should be valid", p)
		}
	}
	invalid := []LatLng{{91, 0}, {-91, 0}, {0, 181}, {0, -181}, {math.NaN(), 0}, {0, math.NaN()}}
	for _, p := range invalid {
		if p.Valid() {
			t.Errorf("%v should be invalid", p)
		}
	}
}

func TestProjectionRoundTrip(t *testing.T) {
	f := func(lat, lng float64) bool {
		p := LatLng{Lat: math.Mod(lat, 89.9), Lng: math.Mod(lng, 179.9)}
		q := UnprojectEqualArea(ProjectEqualArea(p))
		return math.Abs(q.Lat-p.Lat) < 1e-9 && math.Abs(q.Lng-p.Lng) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestProjectionIsEqualArea(t *testing.T) {
	// The Jacobian of the Lambert cylindrical equal-area projection is
	// constant: small lat/lng rectangles anywhere map to planar rectangles of
	// area R²·cosφ·dφ·dλ — the same as their spherical area.
	for _, lat := range []float64{0, 30, 60, 80} {
		d := 0.01 // degrees
		p00 := ProjectEqualArea(LatLng{lat, 0})
		p10 := ProjectEqualArea(LatLng{lat + d, 0})
		p01 := ProjectEqualArea(LatLng{lat, d})
		planar := math.Abs(p10.Y-p00.Y) * math.Abs(p01.X-p00.X)
		spherical := EarthRadiusMeters * EarthRadiusMeters *
			math.Cos((lat+d/2)*math.Pi/180) * (d * math.Pi / 180) * (d * math.Pi / 180)
		if math.Abs(planar-spherical)/spherical > 1e-4 {
			t.Errorf("lat %v: planar area %v, spherical %v", lat, planar, spherical)
		}
	}
}

func TestProjectionExtents(t *testing.T) {
	approx(t, ProjectionWidth(), 2*math.Pi*EarthRadiusMeters, 1e-6, "width")
	approx(t, ProjectionHeight(), 2*EarthRadiusMeters, 1e-6, "height")
	top := ProjectEqualArea(LatLng{90, 0})
	approx(t, top.Y, EarthRadiusMeters, 1e-3, "north pole Y")
}

func TestPolygonContains(t *testing.T) {
	square := Polygon{{0, 0}, {0, 10}, {10, 10}, {10, 0}}
	inside := []LatLng{{5, 5}, {1, 1}, {9, 9}}
	for _, p := range inside {
		if !square.Contains(p) {
			t.Errorf("%v should be inside", p)
		}
	}
	outside := []LatLng{{-1, 5}, {11, 5}, {5, -1}, {5, 11}, {20, 20}}
	for _, p := range outside {
		if square.Contains(p) {
			t.Errorf("%v should be outside", p)
		}
	}
}

func TestPolygonContainsConcave(t *testing.T) {
	// L-shaped polygon: the notch must be outside.
	l := Polygon{{0, 0}, {0, 10}, {5, 10}, {5, 5}, {10, 5}, {10, 0}}
	if !l.Contains(LatLng{2, 2}) {
		t.Error("(2,2) should be inside the L")
	}
	if l.Contains(LatLng{8, 8}) {
		t.Error("(8,8) is in the notch and should be outside")
	}
}

func TestPolygonDegenerate(t *testing.T) {
	if (Polygon{}).Contains(LatLng{0, 0}) {
		t.Error("empty polygon contains nothing")
	}
	if (Polygon{{0, 0}, {1, 1}}).Contains(LatLng{0.5, 0.5}) {
		t.Error("two-vertex polygon contains nothing")
	}
}

func TestCirclePolygon(t *testing.T) {
	center := LatLng{30, -40}
	circle := CirclePolygon(center, 10000, 24)
	if len(circle) != 24 {
		t.Fatalf("want 24 vertices, got %d", len(circle))
	}
	for _, v := range circle {
		approx(t, Haversine(center, v), 10000, 1, "circle vertex radius")
	}
	if !circle.Contains(center) {
		t.Error("circle must contain its center")
	}
	if circle.Contains(Destination(center, 45, 20000)) {
		t.Error("point at 2x radius must be outside")
	}
	inside := Destination(center, 200, 5000)
	if !circle.Contains(inside) {
		t.Error("point at half radius must be inside")
	}
}

func TestCirclePolygonMinSegments(t *testing.T) {
	if got := len(CirclePolygon(LatLng{0, 0}, 100, 1)); got != 3 {
		t.Errorf("minimum segments should be 3, got %d", got)
	}
}

func TestPolygonBoundingBox(t *testing.T) {
	poly := Polygon{{1, 2}, {5, -3}, {-2, 7}}
	b := poly.BoundingBox()
	want := BBox{MinLat: -2, MinLng: -3, MaxLat: 5, MaxLng: 7}
	if b != want {
		t.Errorf("got %+v, want %+v", b, want)
	}
	if (Polygon{}).BoundingBox() != (BBox{}) {
		t.Error("empty polygon should give zero box")
	}
}

func TestBBox(t *testing.T) {
	b := BBox{MinLat: 53, MinLng: 9, MaxLat: 66, MaxLng: 31} // Baltic box from Fig. 4
	if !b.Contains(LatLng{59, 20}) {
		t.Error("Baltic point should be inside")
	}
	if b.Contains(LatLng{50, 20}) || b.Contains(LatLng{59, 40}) {
		t.Error("outside points misclassified")
	}
	c := b.Center()
	approx(t, c.Lat, 59.5, 1e-9, "center lat")
	approx(t, c.Lng, 20, 1e-9, "center lng")
	e := b.Expand(5)
	if e.MinLat != 48 || e.MaxLat != 71 {
		t.Errorf("expand: got %+v", e)
	}
	huge := BBox{MinLat: -89, MinLng: -179, MaxLat: 89, MaxLng: 179}.Expand(5)
	if huge.MinLat != -90 || huge.MaxLat != 90 || huge.MinLng != -180 || huge.MaxLng != 180 {
		t.Errorf("expand must clamp: got %+v", huge)
	}
}

func TestPolygonCentroid(t *testing.T) {
	sq := Polygon{{0, 0}, {0, 10}, {10, 10}, {10, 0}}
	c := sq.Centroid()
	approx(t, c.Lat, 5, 1e-9, "centroid lat")
	approx(t, c.Lng, 5, 1e-9, "centroid lng")
	if (Polygon{}).Centroid() != (LatLng{}) {
		t.Error("empty polygon centroid should be zero")
	}
}

func BenchmarkHaversine(b *testing.B) {
	a := LatLng{51.95, 4.14}
	c := LatLng{1.264, 103.84}
	for i := 0; i < b.N; i++ {
		Haversine(a, c)
	}
}

func BenchmarkProjectEqualArea(b *testing.B) {
	p := LatLng{51.95, 4.14}
	for i := 0; i < b.N; i++ {
		ProjectEqualArea(p)
	}
}

func BenchmarkPolygonContains(b *testing.B) {
	circle := CirclePolygon(LatLng{30, -40}, 10000, 32)
	p := LatLng{30.05, -40.02}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		circle.Contains(p)
	}
}
