package obs

import (
	"context"
	"time"

	"github.com/patternsoflife/pol/internal/obs/trace"
)

// MetricStageSeconds is the shared histogram family for pipeline stage
// durations: the batch dataflow stages, the live engine's merge/publish/
// journal work, and any future stage all record here under distinct
// stage labels, so one scrape shows where pipeline time goes.
const MetricStageSeconds = "pol_pipeline_stage_seconds"

// Span measures one timed region of a pipeline stage. Spans are values:
// start with StartSpan, finish with End. A zero Span (nil registry) is a
// no-op, so instrumented code needs no nil checks. When started through
// StartSpanCtx with an ambient trace in the context, the stage span is
// also recorded as a child trace span, so one trace shows
// ingest→clean→trip→merge→publish end to end alongside the aggregate
// histograms.
type Span struct {
	hist *Histogram
	ts   *trace.Span
	t0   time.Time
}

// StartSpan begins a timed span recording into the stage-duration
// histogram of reg under the given stage label. A nil registry returns a
// no-op span.
func StartSpan(reg *Registry, stage string) Span {
	if reg == nil {
		return Span{}
	}
	return Span{
		hist: reg.Histogram(MetricStageSeconds, Labels{"stage": stage}),
		t0:   time.Now(),
	}
}

// StartSpanCtx is StartSpan joined to the ambient trace: when ctx
// carries a trace span (and tr is non-nil), the stage also records a
// child trace span named "stage.<stage>", and the returned context
// carries it so nested stages chain. Without an ambient span or tracer
// it behaves exactly like StartSpan.
func StartSpanCtx(ctx context.Context, tr *trace.Tracer, reg *Registry, stage string) (context.Context, Span) {
	s := StartSpan(reg, stage)
	if parent := trace.FromContext(ctx); parent != nil && tr != nil {
		s.ts = tr.StartChild(parent, "stage."+stage)
		ctx = trace.ContextWith(ctx, s.ts)
	}
	return ctx, s
}

// TraceSpan returns the underlying trace span (nil when the span is
// metrics-only), for attaching attributes or events to the stage.
func (s Span) TraceSpan() *trace.Span { return s.ts }

// End finishes the span, records its duration (with the trace ID as the
// histogram exemplar when traced), and returns it.
func (s Span) End() time.Duration {
	if s.hist == nil {
		s.ts.Finish()
		return 0
	}
	d := time.Since(s.t0)
	if s.ts != nil {
		s.ts.Finish()
		s.hist.ObserveExemplar(d.Seconds(), s.ts.Trace.String())
	} else {
		s.hist.Observe(d.Seconds())
	}
	return d
}

// ObserveStage records an already-measured stage duration — for callers
// that time work themselves (the dataflow engine's per-stage busy time).
// A nil registry is a no-op.
func ObserveStage(reg *Registry, stage string, d time.Duration) {
	if reg == nil {
		return
	}
	reg.Histogram(MetricStageSeconds, Labels{"stage": stage}).Observe(d.Seconds())
}
