// Package render draws inventory features as raster maps — the paper's
// Figures 1 and 4 (average speed and course), Figure 5 (average time to
// destination) and Figure 6 (most frequent destination), using only the
// standard library image stack.
//
// Rendering is pixel-exact with respect to the grid: every pixel maps
// through the equirectangular projection to a coordinate, to its hexgrid
// cell, and takes that cell's colour, so hexagon boundaries emerge
// naturally without polygon rasterization.
package render

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"math"
	"os"

	"github.com/patternsoflife/pol/internal/geo"
	"github.com/patternsoflife/pol/internal/hexgrid"
)

// Background is the colour of cells with no data (deep sea blue-grey).
var Background = color.RGBA{R: 18, G: 24, B: 38, A: 255}

// WorldBox is the whole-world bounding box used by the global figures.
var WorldBox = geo.BBox{MinLat: -75, MinLng: -180, MaxLat: 80, MaxLng: 180}

// BalticBox is the Figure-4 regional bounding box.
var BalticBox = geo.BBox{MinLat: 53, MinLng: 9, MaxLat: 66, MaxLng: 31}

// CellValue returns a cell's scalar value; ok=false leaves the pixel at the
// background colour.
type CellValue func(hexgrid.Cell) (float64, bool)

// Ramp maps a value to a colour. Values are pre-normalized to [0, 1] for
// scalar ramps; angular ramps receive degrees.
type Ramp func(v float64) color.RGBA

// Map renders the value function over the box at the given grid resolution.
// width is the image width in pixels; height follows the box aspect ratio.
func Map(box geo.BBox, width int, res int, value CellValue, ramp Ramp) *image.RGBA {
	if width < 16 {
		width = 16
	}
	height := int(float64(width) * (box.MaxLat - box.MinLat) / (box.MaxLng - box.MinLng))
	if height < 8 {
		height = 8
	}
	img := image.NewRGBA(image.Rect(0, 0, width, height))
	// Cache per-cell colours: adjacent pixels usually share a cell.
	cache := make(map[hexgrid.Cell]color.RGBA)
	for y := 0; y < height; y++ {
		lat := box.MaxLat - (float64(y)+0.5)/float64(height)*(box.MaxLat-box.MinLat)
		for x := 0; x < width; x++ {
			lng := box.MinLng + (float64(x)+0.5)/float64(width)*(box.MaxLng-box.MinLng)
			cell := hexgrid.LatLngToCell(geo.LatLng{Lat: lat, Lng: lng}, res)
			c, ok := cache[cell]
			if !ok {
				if v, has := value(cell); has {
					c = ramp(v)
				} else {
					c = Background
				}
				cache[cell] = c
			}
			img.SetRGBA(x, y, c)
		}
	}
	return img
}

// DotMap renders one filled dot per populated cell — the right projection
// when cells are smaller than pixels (global maps of res-6 cells), where
// per-pixel sampling would alias thin lanes into dotted lines. Dots are
// sized to cover at least the cell footprint, minimum one pixel.
func DotMap(box geo.BBox, width int, cells []hexgrid.Cell, value CellValue, ramp Ramp) *image.RGBA {
	if width < 16 {
		width = 16
	}
	height := int(float64(width) * (box.MaxLat - box.MinLat) / (box.MaxLng - box.MinLng))
	if height < 8 {
		height = 8
	}
	img := image.NewRGBA(image.Rect(0, 0, width, height))
	for y := 0; y < height; y++ {
		for x := 0; x < width; x++ {
			img.SetRGBA(x, y, Background)
		}
	}
	degPerPixel := (box.MaxLng - box.MinLng) / float64(width)
	for _, cell := range cells {
		v, ok := value(cell)
		if !ok {
			continue
		}
		c := ramp(v)
		p := cell.LatLng()
		if !box.Contains(p) {
			continue
		}
		// Cell diameter in pixels (approximate, using the cell edge as
		// degrees at the equator scale).
		cellDeg := 2 * hexgrid.EdgeLengthKm(cell.Resolution()) / 111.0
		r := int(cellDeg / degPerPixel / 2)
		if r < 1 {
			r = 1
		}
		cx := int((p.Lng - box.MinLng) / (box.MaxLng - box.MinLng) * float64(width))
		cy := int((box.MaxLat - p.Lat) / (box.MaxLat - box.MinLat) * float64(height))
		for dy := -r; dy <= r; dy++ {
			for dx := -r; dx <= r; dx++ {
				if dx*dx+dy*dy > r*r+r {
					continue
				}
				x, y := cx+dx, cy+dy
				if x >= 0 && x < width && y >= 0 && y < height {
					img.SetRGBA(x, y, c)
				}
			}
		}
	}
	return img
}

// useDots reports whether cells at the resolution are smaller than the
// pixels of a rendering, in which case DotMap avoids aliasing.
func useDots(box geo.BBox, width, res int) bool {
	degPerPixel := (box.MaxLng - box.MinLng) / float64(width)
	cellDeg := 2 * hexgrid.EdgeLengthKm(res) / 111.0
	return cellDeg < degPerPixel*1.5
}

// WritePNG writes the image to path.
func WritePNG(img image.Image, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("render: create %s: %w", path, err)
	}
	defer f.Close()
	if err := png.Encode(f, img); err != nil {
		return fmt.Errorf("render: encode %s: %w", path, err)
	}
	return f.Sync()
}

// SequentialRamp maps [0,1] from cool blue through white to hot red — the
// paper's Figure-1 speed colouring ("blue is low speed and red is high").
func SequentialRamp(v float64) color.RGBA {
	v = clamp01(v)
	stops := []color.RGBA{
		{R: 28, G: 60, B: 180, A: 255},
		{R: 90, G: 160, B: 230, A: 255},
		{R: 245, G: 245, B: 235, A: 255},
		{R: 250, G: 150, B: 70, A: 255},
		{R: 210, G: 30, B: 30, A: 255},
	}
	return lerpStops(stops, v)
}

// HeatRamp maps [0,1] through a dark-to-bright "inferno-like" sequence,
// used for trip-frequency and ATA maps.
func HeatRamp(v float64) color.RGBA {
	v = clamp01(v)
	stops := []color.RGBA{
		{R: 15, G: 10, B: 60, A: 255},
		{R: 110, G: 20, B: 110, A: 255},
		{R: 210, G: 60, B: 75, A: 255},
		{R: 250, G: 160, B: 50, A: 255},
		{R: 252, G: 250, B: 160, A: 255},
	}
	return lerpStops(stops, v)
}

// AngularRamp maps an angle in degrees to a hue wheel matching the paper's
// Figure-1 course colouring: green at north, blue at east, red at south,
// yellow at west.
func AngularRamp(deg float64) color.RGBA {
	a := math.Mod(deg, 360)
	if a < 0 {
		a += 360
	}
	// Anchor hues (HSV degrees): N=120 (green), E=240 (blue), S=0 (red),
	// W=60 (yellow), wrapping back to green.
	anchors := []float64{120, 240, 360, 420, 480} // monotone hue track
	seg := a / 90
	i := int(seg)
	if i >= 4 {
		i = 3
	}
	f := seg - float64(i)
	hue := anchors[i]*(1-f) + anchors[i+1]*f
	r, g, b := hsv(math.Mod(hue, 360), 0.85, 0.95)
	return color.RGBA{R: r, G: g, B: b, A: 255}
}

// CategoricalPalette returns visually distinct colours for class maps
// (Figure 6 uses dark orange / purple / green).
var CategoricalPalette = []color.RGBA{
	{R: 230, G: 120, B: 20, A: 255}, // dark orange (Singapore)
	{R: 140, G: 60, B: 180, A: 255}, // purple (Shanghai)
	{R: 60, G: 170, B: 80, A: 255},  // green (Rotterdam)
	{R: 230, G: 70, B: 120, A: 255},
	{R: 70, G: 150, B: 220, A: 255},
	{R: 200, G: 200, B: 60, A: 255},
}

func clamp01(v float64) float64 {
	if v < 0 || math.IsNaN(v) {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func lerpStops(stops []color.RGBA, v float64) color.RGBA {
	pos := v * float64(len(stops)-1)
	i := int(pos)
	if i >= len(stops)-1 {
		return stops[len(stops)-1]
	}
	f := pos - float64(i)
	a, b := stops[i], stops[i+1]
	lerp := func(x, y uint8) uint8 { return uint8(float64(x)*(1-f) + float64(y)*f) }
	return color.RGBA{R: lerp(a.R, b.R), G: lerp(a.G, b.G), B: lerp(a.B, b.B), A: 255}
}

// hsv converts HSV (h in degrees, s/v in [0,1]) to 8-bit RGB.
func hsv(h, s, v float64) (uint8, uint8, uint8) {
	c := v * s
	x := c * (1 - math.Abs(math.Mod(h/60, 2)-1))
	m := v - c
	var r, g, b float64
	switch {
	case h < 60:
		r, g, b = c, x, 0
	case h < 120:
		r, g, b = x, c, 0
	case h < 180:
		r, g, b = 0, c, x
	case h < 240:
		r, g, b = 0, x, c
	case h < 300:
		r, g, b = x, 0, c
	default:
		r, g, b = c, 0, x
	}
	to8 := func(f float64) uint8 { return uint8(math.Round((f + m) * 255)) }
	return to8(r), to8(g), to8(b)
}
