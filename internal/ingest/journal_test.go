package ingest

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"github.com/patternsoflife/pol/internal/fault"
	"github.com/patternsoflife/pol/internal/geo"
	"github.com/patternsoflife/pol/internal/model"
)

// journalRecSize is the on-disk footprint of one position record: fixed
// 53-byte payload plus the record header and CRC trailer.
const journalRecSize = recHeaderLen + 53 + recTrailerLen

// testPositions builds n deterministic, distinguishable position records.
func testPositions(n int) []model.PositionRecord {
	recs := make([]model.PositionRecord, n)
	for i := range recs {
		recs[i] = model.PositionRecord{
			MMSI: 200000000 + uint32(i%7),
			Time: int64(1640995200 + 60*i),
			Pos:  geo.LatLng{Lat: 10 + float64(i)/100, Lng: -20 - float64(i)/100},
			SOG:  12.5 + float64(i),
			COG:  float64(i % 360),
		}
	}
	return recs
}

// writeJournal appends recs to a fresh journal at base and closes it.
func writeJournal(t *testing.T, base string, recs []model.PositionRecord, segBytes int64) {
	t.Helper()
	j, err := OpenJournal(base, JournalOptions{SegmentBytes: segBytes}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := j.AppendPosition(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

// replayJournal opens base and collects every replayed entry.
func replayJournal(t *testing.T, base string, opts JournalOptions) ([]JournalEntry, *Journal) {
	t.Helper()
	var got []JournalEntry
	j, err := OpenJournal(base, opts, func(e JournalEntry) error {
		got = append(got, e)
		return nil
	})
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	return got, j
}

// expectPrefix fails unless got is exactly want[:len(got)] with contiguous
// sequence numbers from 1 — the longest-valid-prefix recovery property.
func expectPrefix(t *testing.T, got []JournalEntry, want []model.PositionRecord, label string) {
	t.Helper()
	if len(got) > len(want) {
		t.Fatalf("%s: replayed %d entries, only %d written", label, len(got), len(want))
	}
	for i, e := range got {
		if e.Seq != uint64(i+1) {
			t.Fatalf("%s: entry %d has seq %d, want %d", label, i, e.Seq, i+1)
		}
		if e.Kind != entryPosition || e.Pos != want[i] {
			t.Fatalf("%s: entry %d decoded %+v, want %+v", label, i, e.Pos, want[i])
		}
	}
}

// TestJournalTruncationProperty truncates a single-segment journal at
// every possible byte offset and requires recovery to yield exactly the
// records wholly contained below the cut — never an error, never a
// record past it — and the journal to accept appends afterwards.
func TestJournalTruncationProperty(t *testing.T) {
	recs := testPositions(12)
	master := t.TempDir()
	writeJournal(t, filepath.Join(master, "wal"), recs, 1<<20)
	seg, err := os.ReadFile(filepath.Join(master, "wal.000001.wal"))
	if err != nil {
		t.Fatal(err)
	}
	wantSize := segHeaderLen + len(recs)*journalRecSize
	if len(seg) != wantSize {
		t.Fatalf("segment is %d bytes, want %d", len(seg), wantSize)
	}

	for off := 0; off <= len(seg); off++ {
		dir := t.TempDir()
		base := filepath.Join(dir, "wal")
		if err := os.WriteFile(filepath.Join(dir, "wal.000001.wal"), seg[:off], 0o644); err != nil {
			t.Fatal(err)
		}
		got, j := replayJournal(t, base, JournalOptions{})
		wantN := 0
		if off >= segHeaderLen {
			wantN = (off - segHeaderLen) / journalRecSize
		}
		if len(got) != wantN {
			t.Fatalf("truncate at %d: replayed %d entries, want %d", off, len(got), wantN)
		}
		expectPrefix(t, got, recs, "truncated")
		if rec := j.Recovery(); off > segHeaderLen && (off-segHeaderLen)%journalRecSize != 0 && rec.TornBytes == 0 {
			t.Fatalf("truncate at %d: mid-record cut not reported as torn: %+v", off, rec)
		}
		// The journal must keep working: the next append continues the run.
		if err := j.AppendPosition(recs[0]); err != nil {
			t.Fatalf("truncate at %d: append after recovery: %v", off, err)
		}
		if got, want := j.LastSeq(), uint64(wantN+1); got != want {
			t.Fatalf("truncate at %d: seq after append %d, want %d", off, got, want)
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestJournalBitFlipProperty flips a single bit at pseudo-random offsets
// of a two-segment journal and requires recovery to always produce a
// clean prefix of the written records — corruption may shorten the
// replay but must never surface an error or a record that was not
// written, and the bad bytes must be preserved in .corrupt sidecars.
func TestJournalBitFlipProperty(t *testing.T) {
	recs := testPositions(12)
	// Rotate after ~6 records so the flip can land in either segment.
	segBytes := int64(segHeaderLen + 6*journalRecSize)
	master := t.TempDir()
	writeJournal(t, filepath.Join(master, "wal"), recs, segBytes)
	segs, err := scanSegments(filepath.Join(master, "wal"))
	if err != nil || len(segs) < 2 {
		t.Fatalf("want >=2 segments, got %v (%v)", segs, err)
	}
	files := make(map[string][]byte)
	total := 0
	for _, idx := range segs {
		name := filepath.Base(segmentPath("wal", idx))
		b, err := os.ReadFile(filepath.Join(master, name))
		if err != nil {
			t.Fatal(err)
		}
		files[name] = b
		total += len(b)
	}

	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		target := rng.Intn(total)
		dir := t.TempDir()
		flippedIn := ""
		off := target
		for _, idx := range segs {
			name := filepath.Base(segmentPath("wal", idx))
			b := files[name]
			if flippedIn == "" && off < len(b) {
				mut := bytes.Clone(b)
				mut[off] ^= 1 << uint(rng.Intn(8))
				b = mut
				flippedIn = name
			} else if flippedIn == "" {
				off -= len(b)
			}
			if err := os.WriteFile(filepath.Join(dir, name), b, 0o644); err != nil {
				t.Fatal(err)
			}
		}

		got, j := replayJournal(t, filepath.Join(dir, "wal"), JournalOptions{})
		expectPrefix(t, got, recs, flippedIn)
		if len(got) < len(recs) {
			// Something was lost to the flip: the bytes must be preserved.
			rec := j.Recovery()
			if rec.CorruptEvents == 0 && rec.TornBytes == 0 {
				t.Fatalf("flip in %s lost %d records but recovery reports neither torn nor corrupt: %+v",
					flippedIn, len(recs)-len(got), rec)
			}
			if rec.CorruptEvents > 0 {
				side, err := filepath.Glob(filepath.Join(dir, "*.corrupt"))
				if err != nil || len(side) == 0 {
					t.Fatalf("flip in %s: corruption without a .corrupt sidecar", flippedIn)
				}
			}
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestJournalRotationAndPrune checks segment rotation under a small
// threshold and checkpoint-driven retention: pruning at the durable
// frontier removes all closed segments, keeps the active one, and a
// reopen replays only what the checkpoint does not cover.
func TestJournalRotationAndPrune(t *testing.T) {
	recs := testPositions(20)
	segBytes := int64(segHeaderLen + 4*journalRecSize)
	base := filepath.Join(t.TempDir(), "live.wal")

	j, err := OpenJournal(base, JournalOptions{SegmentBytes: segBytes}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := j.AppendPosition(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := j.Segments(); got != 5 {
		t.Fatalf("segments after 20 appends at 4/segment: %d, want 5", got)
	}
	if err := j.Prune(12); err != nil {
		t.Fatal(err)
	}
	if got := j.Segments(); got != 2 {
		t.Fatalf("segments after prune at seq 12: %d, want 2", got)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// A restart that starts from the covering checkpoint sees only the
	// uncovered suffix.
	got, j2 := replayJournal(t, base, JournalOptions{SegmentBytes: segBytes, StartSeq: 12})
	if len(got) != 8 {
		t.Fatalf("replayed %d entries past seq 12, want 8", len(got))
	}
	for i, e := range got {
		if e.Seq != uint64(13+i) || e.Pos != recs[12+i] {
			t.Fatalf("entry %d: seq %d %+v, want seq %d %+v", i, e.Seq, e.Pos, 13+i, recs[12+i])
		}
	}
	if err := j2.AppendPosition(recs[0]); err != nil {
		t.Fatal(err)
	}
	if got, want := j2.LastSeq(), uint64(21); got != want {
		t.Fatalf("seq after reopen+append %d, want %d", got, want)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestJournalV1Upgrade replays a legacy v1 journal (single unchecksummed
// file at the base path), appends to v2 segments on top of it, and
// retires the v1 file once a checkpoint covers it.
func TestJournalV1Upgrade(t *testing.T) {
	recs := testPositions(8)
	base := filepath.Join(t.TempDir(), "legacy.wal")

	var v1 []byte
	v1 = append(v1, walMagicV1...)
	for _, r := range recs[:5] {
		payload := appendPositionEntry(nil, r)
		v1 = append(v1, entryPosition)
		v1 = binary.LittleEndian.AppendUint32(v1, uint32(len(payload)))
		v1 = append(v1, payload...)
	}
	if err := os.WriteFile(base, v1, 0o644); err != nil {
		t.Fatal(err)
	}

	got, j := replayJournal(t, base, JournalOptions{})
	expectPrefix(t, got, recs, "v1")
	if len(got) != 5 {
		t.Fatalf("v1 replayed %d entries, want 5", len(got))
	}
	if rec := j.Recovery(); rec.V1Entries != 5 {
		t.Fatalf("V1Entries = %d, want 5", rec.V1Entries)
	}
	for _, r := range recs[5:] {
		if err := j.AppendPosition(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: v1 prefix then v2 suffix, one contiguous sequence run.
	got2, j2 := replayJournal(t, base, JournalOptions{})
	expectPrefix(t, got2, recs, "v1+v2")
	if len(got2) != 8 {
		t.Fatalf("reopen replayed %d entries, want 8", len(got2))
	}
	if err := j2.Prune(8); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(base); !os.IsNotExist(err) {
		t.Fatalf("v1 journal not retired by covered prune: %v", err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestJournalFsyncGate verifies fsyncgate semantics: after one failed
// fsync the journal is permanently broken — every later operation
// returns the sticky error without re-attempting the sync.
func TestJournalFsyncGate(t *testing.T) {
	reg := fault.New()
	if err := reg.Enable(FPJournalSync, "error*1"); err != nil {
		t.Fatal(err)
	}
	base := filepath.Join(t.TempDir(), "wal")
	j, err := OpenJournal(base, JournalOptions{Faults: reg}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.AppendPosition(testPositions(1)[0]); err != nil {
		t.Fatal(err)
	}
	if err := j.Sync(); !errors.Is(err, ErrJournalBroken) || !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("first sync = %v, want injected ErrJournalBroken", err)
	}
	if err := j.AppendPosition(testPositions(1)[0]); !errors.Is(err, ErrJournalBroken) {
		t.Fatalf("append after broken = %v, want sticky ErrJournalBroken", err)
	}
	if err := j.Sync(); !errors.Is(err, ErrJournalBroken) {
		t.Fatalf("second sync = %v, want sticky ErrJournalBroken", err)
	}
	if got := reg.Count(FPJournalSync); got != 1 {
		t.Fatalf("sync failpoint evaluated %d times after break, want 1 (no fsync retry)", got)
	}
	if err := j.Close(); !errors.Is(err, ErrJournalBroken) {
		t.Fatalf("close after broken = %v, want sticky ErrJournalBroken", err)
	}
}

// TestJournalCorruptMiddleQuarantine corrupts a record in the middle of
// the first of three segments: replay must stop at the bad record,
// quarantine the remainder and the later segments, and keep appending
// from the last valid sequence number.
func TestJournalCorruptMiddleQuarantine(t *testing.T) {
	recs := testPositions(12)
	segBytes := int64(segHeaderLen + 4*journalRecSize)
	dir := t.TempDir()
	base := filepath.Join(dir, "wal")
	writeJournal(t, base, recs, segBytes)

	// Flip a payload byte of record 2 (segment 1 holds records 1..4).
	seg1 := segmentPath(base, 1)
	b, err := os.ReadFile(seg1)
	if err != nil {
		t.Fatal(err)
	}
	b[segHeaderLen+journalRecSize+recHeaderLen+10] ^= 0x40
	if err := os.WriteFile(seg1, b, 0o644); err != nil {
		t.Fatal(err)
	}

	got, j := replayJournal(t, base, JournalOptions{SegmentBytes: segBytes})
	expectPrefix(t, got, recs, "corrupt middle")
	if len(got) != 1 {
		t.Fatalf("replayed %d entries, want 1 (stop at corrupt record 2)", len(got))
	}
	rec := j.Recovery()
	if rec.CorruptEvents == 0 || rec.QuarantinedSegments == 0 || rec.QuarantinedBytes == 0 {
		t.Fatalf("corruption not quarantined: %+v", rec)
	}
	sidecars, _ := filepath.Glob(filepath.Join(dir, "*.corrupt"))
	if len(sidecars) == 0 {
		t.Fatal("no .corrupt sidecars preserved")
	}
	if err := j.AppendPosition(recs[1]); err != nil {
		t.Fatal(err)
	}
	if got, want := j.LastSeq(), uint64(2); got != want {
		t.Fatalf("seq after post-corruption append %d, want %d", got, want)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	got2, j2 := replayJournal(t, base, JournalOptions{SegmentBytes: segBytes})
	if len(got2) != 2 {
		t.Fatalf("second reopen replayed %d entries, want 2", len(got2))
	}
	j2.Close()
}
