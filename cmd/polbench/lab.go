package main

import (
	"fmt"
	"math"
	"path/filepath"
	"sort"
	"time"

	"github.com/patternsoflife/pol/internal/anomaly"
	"github.com/patternsoflife/pol/internal/baseline"
	"github.com/patternsoflife/pol/internal/dataflow"
	"github.com/patternsoflife/pol/internal/eta"
	"github.com/patternsoflife/pol/internal/geo"
	"github.com/patternsoflife/pol/internal/hexgrid"
	"github.com/patternsoflife/pol/internal/inventory"
	"github.com/patternsoflife/pol/internal/model"
	"github.com/patternsoflife/pol/internal/pipeline"
	"github.com/patternsoflife/pol/internal/ports"
	"github.com/patternsoflife/pol/internal/predict"
	"github.com/patternsoflife/pol/internal/render"
	"github.com/patternsoflife/pol/internal/routing"
	"github.com/patternsoflife/pol/internal/sim"
	"github.com/patternsoflife/pol/internal/weather"
)

// lab owns the shared dataset and lazily built inventories of a polbench
// run.
type lab struct {
	vessels, days int
	seed          int64
	outDir        string
	width         int

	gaz     *ports.Gazetteer
	portIdx *ports.Index
	sim     *sim.Simulator
	tracks  [][]model.PositionRecord
	voyages []sim.Voyage
	invs    map[int]*inventory.Inventory
	stats   map[int]pipeline.Stats
}

func newLab(vessels, days int, seed int64, outDir string, width int) *lab {
	return &lab{
		vessels: vessels, days: days, seed: seed, outDir: outDir, width: width,
		invs:  make(map[int]*inventory.Inventory),
		stats: make(map[int]pipeline.Stats),
	}
}

func (l *lab) ensureSim() error {
	if l.sim != nil {
		return nil
	}
	l.gaz = ports.Default()
	l.portIdx = ports.NewIndex(l.gaz, ports.IndexResolution)
	s, err := sim.New(sim.Config{Vessels: l.vessels, Days: l.days, Seed: l.seed, NoiseRate: 0.005}, l.gaz)
	if err != nil {
		return err
	}
	l.sim = s
	start := time.Now()
	l.tracks = make([][]model.PositionRecord, l.vessels)
	ctx := dataflow.NewContext(0)
	type part struct {
		recs []model.PositionRecord
		voys []sim.Voyage
	}
	gen := dataflow.Generate(ctx, l.vessels, func(i int) []part {
		recs, voys := s.VesselTrack(i)
		return []part{{recs: recs, voys: voys}}
	})
	all, err := dataflow.Collect(gen)
	if err != nil {
		return err
	}
	var records int64
	for i, p := range all {
		l.tracks[i] = p.recs
		l.voyages = append(l.voyages, p.voys...)
		records += int64(len(p.recs))
	}
	fmt.Printf("dataset: %s → %d records, %d voyages (generated in %s)\n",
		s.Config().Describe(), records, len(l.voyages), time.Since(start).Round(time.Millisecond))
	return nil
}

func (l *lab) ensureInv(res int) (*inventory.Inventory, pipeline.Stats, error) {
	if inv, ok := l.invs[res]; ok {
		return inv, l.stats[res], nil
	}
	if err := l.ensureSim(); err != nil {
		return nil, pipeline.Stats{}, err
	}
	ctx := dataflow.NewContext(0)
	records := dataflow.Generate(ctx, len(l.tracks), func(i int) []model.PositionRecord { return l.tracks[i] })
	result, err := pipeline.Run(records, l.sim.Fleet().StaticIndex(), l.portIdx, pipeline.Options{
		Resolution:  res,
		Description: fmt.Sprintf("polbench res %d: %s", res, l.sim.Config().Describe()),
	})
	if err != nil {
		return nil, pipeline.Stats{}, err
	}
	fmt.Printf("built res-%d inventory: %s\n", res, result.Stats)
	l.invs[res] = result.Inventory
	l.stats[res] = result.Stats
	return result.Inventory, result.Stats, nil
}

// completedVoyages returns voyages with ground-truth arrivals inside the
// simulation window.
func (l *lab) completedVoyages() []sim.Voyage {
	end := l.sim.Config().Start.Unix() + int64(l.sim.Config().Days)*86400
	var out []sim.Voyage
	for _, v := range l.voyages {
		if v.ArriveTime < end {
			out = append(out, v)
		}
	}
	return out
}

// trackDuring returns a voyage's reports between departure and arrival.
func (l *lab) trackDuring(v sim.Voyage) []model.PositionRecord {
	var track []model.PositionRecord
	for i, info := range l.sim.Fleet().Vessels {
		if info.MMSI != v.MMSI {
			continue
		}
		for _, r := range l.tracks[i] {
			if r.Time >= v.DepartTime && r.Time <= v.ArriveTime {
				track = append(track, r)
			}
		}
		break
	}
	return track
}

// ------------------------------------------------------------------------
// Table 1: dataset description.

func (l *lab) runTable1() error {
	if err := l.ensureSim(); err != nil {
		return err
	}
	var records int64
	for _, t := range l.tracks {
		records += int64(len(t))
	}
	fmt.Println("paper (Table 1):")
	fmt.Println("  commercial fleet positional reports: 2.7 billion (60 GB)")
	fmt.Println("  vessel static information:           60 thousand")
	fmt.Println("  port information:                    20 thousand")
	fmt.Println("measured (synthetic substitute):")
	fmt.Printf("  commercial fleet positional reports: %d\n", records)
	fmt.Printf("  vessel static information:           %d\n", len(l.sim.Fleet().Vessels))
	fmt.Printf("  port information:                    %d\n", l.gaz.Len())
	byType := map[model.VesselType]int{}
	for _, v := range l.sim.Fleet().Vessels {
		byType[v.Type]++
	}
	fmt.Print("  fleet mix:")
	for vt := model.VesselCargo; vt <= model.VesselPassenger; vt++ {
		fmt.Printf(" %s=%d", vt, byType[vt])
	}
	fmt.Println()
	return nil
}

// ------------------------------------------------------------------------

func (l *lab) runTable2() error {
	inv, _, err := l.ensureInv(6)
	if err != nil {
		return err
	}
	fmt.Println("paper (Table 2): three grouping sets — (cell), (cell,vessel-type),")
	fmt.Println("  (cell,origin,destination,vessel-type)")
	fmt.Println("measured: groups built per set in one pipeline pass:")
	for _, gs := range inventory.AllGroupSets {
		fmt.Printf("  %-45v %8d groups\n", gs, inv.CountGroups(gs))
	}
	c1 := inv.CountGroups(inventory.GSCell)
	c2 := inv.CountGroups(inventory.GSCellType)
	c3 := inv.CountGroups(inventory.GSCellODType)
	fmt.Printf("shape check (hierarchy |GS1| <= |GS2| <= |GS3|): %v\n", c1 <= c2 && c2 <= c3)
	return nil
}

// ------------------------------------------------------------------------

func (l *lab) runTable3() error {
	inv, _, err := l.ensureInv(6)
	if err != nil {
		return err
	}
	// Pick the busiest cell and print the full Table-3 feature matrix.
	var busiest hexgrid.Cell
	var max uint64
	inv.Each(func(k inventory.GroupKey, s *inventory.CellSummary) bool {
		if k.Set == inventory.GSCell &&
			(s.Records > max || (s.Records == max && k.Cell < busiest)) {
			busiest, max = k.Cell, s.Records
		}
		return true
	})
	s, _ := inv.Cell(busiest)
	p := busiest.LatLng()
	fmt.Println("paper (Table 3): per-feature statistics — Cnt, Dist, Mean, Std,")
	fmt.Println("  Percentiles(10/50/90), Bins(30°), Top-N")
	fmt.Printf("measured, busiest cell %v (%.3f,%.3f):\n", busiest, p.Lat, p.Lng)
	fmt.Printf("  records      cnt=%d\n", s.Records)
	fmt.Printf("  ships        dist=%d\n", s.Ships.Estimate())
	fmt.Printf("  course       mean*=%.1f° bins=%v\n", s.Course.Mean(), s.CourseBins.Bins())
	fmt.Printf("  heading      mean*=%.1f° bins=%v\n", s.Heading.Mean(), s.HeadingBins.Bins())
	p10, p50, p90 := s.SpeedPercentiles()
	fmt.Printf("  speed        mean=%.2f std=%.2f p10/50/90=%.1f/%.1f/%.1f kn\n",
		s.Speed.Mean(), s.Speed.Std(), p10, p50, p90)
	fmt.Printf("  trips        dist=%d\n", s.Trips.Estimate())
	fmt.Printf("  ETO          mean=%s std=%s p50=%s\n",
		durS(s.ETO.Mean()), durS(s.ETO.Std()), durS(s.ETODig.Quantile(0.5)))
	fmt.Printf("  ATA          mean=%s std=%s p50=%s\n",
		durS(s.ATA.Mean()), durS(s.ATA.Std()), durS(s.ATADig.Quantile(0.5)))
	fmt.Print("  origin       top-n:")
	for _, e := range s.Origins.Top(3) {
		fmt.Printf(" %s=%d", l.portName(model.PortID(e.Key)), e.Count)
	}
	fmt.Print("\n  destination  top-n:")
	for _, e := range s.Dests.Top(3) {
		fmt.Printf(" %s=%d", l.portName(model.PortID(e.Key)), e.Count)
	}
	fmt.Print("\n  transitions  top-n:")
	for _, e := range s.TopTransitions(3) {
		fmt.Printf(" %v=%d", hexgrid.Cell(e.Key), e.Count)
	}
	fmt.Println()
	return nil
}

func durS(sec float64) time.Duration {
	return (time.Duration(sec) * time.Second).Round(time.Minute)
}

func (l *lab) portName(id model.PortID) string {
	if p, ok := l.gaz.ByID(id); ok {
		return p.Name
	}
	return fmt.Sprintf("port-%d", id)
}

// ------------------------------------------------------------------------

func (l *lab) runTable4() error {
	type row struct {
		res         int
		cells       int
		compression float64
		utilGlobal  float64
		utilCover   float64
	}
	var rows []row
	var coverBox geo.BBox
	for _, res := range []int{6, 7} {
		inv, _, err := l.ensureInv(res)
		if err != nil {
			return err
		}
		cells := inv.Cells(inventory.GSCell)
		if res == 6 {
			// Coverage envelope: bounding box of observed res-6 traffic.
			coverBox = geo.BBox{MinLat: 90, MinLng: 180, MaxLat: -90, MaxLng: -180}
			for _, c := range cells {
				p := c.LatLng()
				coverBox.MinLat = math.Min(coverBox.MinLat, p.Lat)
				coverBox.MaxLat = math.Max(coverBox.MaxLat, p.Lat)
				coverBox.MinLng = math.Min(coverBox.MinLng, p.Lng)
				coverBox.MaxLng = math.Max(coverBox.MaxLng, p.Lng)
			}
		}
		rows = append(rows, row{
			res:         res,
			cells:       len(cells),
			compression: inv.Compression(inventory.GSCell),
			utilGlobal:  inv.Utilization(),
			utilCover:   inv.CoverageUtilization(coverBox),
		})
	}
	fmt.Println("paper (Table 4, 2.7B records / year):")
	fmt.Println("  res 6:  7.30M cells   compression 99.73%   H3 utilization 51.69%")
	fmt.Println("  res 7: 42.47M cells   compression 98.44%   H3 utilization 42.96%")
	fmt.Printf("measured (%d records / %d vessels / %d days):\n", l.stats[6].RawRecords, l.vessels, l.days)
	for _, r := range rows {
		fmt.Printf("  res %d: %7d cells   compression %6.2f%%   global util %8.4f%%   envelope util %6.2f%%\n",
			r.res, r.cells, r.compression*100, r.utilGlobal*100, r.utilCover*100)
	}
	fmt.Println("shape checks:")
	ok1 := rows[1].cells > rows[0].cells
	ok2 := rows[0].compression > rows[1].compression
	ok3 := rows[0].utilGlobal > rows[1].utilGlobal && rows[0].utilCover > rows[1].utilCover
	fmt.Printf("  res-7 cells exceed res-6 cells:              %v (paper: 42.47M > 7.3M)\n", ok1)
	fmt.Printf("  res-6 compression exceeds res-7:             %v (paper: 99.73%% > 98.44%%)\n", ok2)
	fmt.Printf("  utilization drops with finer resolution:     %v (paper: 51.69%% > 42.96%%)\n", ok3)
	return nil
}

// ------------------------------------------------------------------------

func (l *lab) runFig1() error {
	inv, _, err := l.ensureInv(6)
	if err != nil {
		return err
	}
	speedPath := filepath.Join(l.outDir, "fig1_speed.png")
	if err := render.WritePNG(render.SpeedMap(inv, render.WorldBox, l.width, 24), speedPath); err != nil {
		return err
	}
	coursePath := filepath.Join(l.outDir, "fig1_course.png")
	if err := render.WritePNG(render.CourseMap(inv, render.WorldBox, l.width), coursePath); err != nil {
		return err
	}
	fmt.Println("paper (Figure 1): global per-cell average speed (blue=slow, red=fast)")
	fmt.Println("  and average course (green=N, blue=E, red=S, yellow=W), res 6, 7.3M cells")
	fmt.Printf("measured: %d populated cells rendered\n", len(inv.Cells(inventory.GSCell)))
	fmt.Printf("  wrote %s\n  wrote %s\n", speedPath, coursePath)
	// Series: distribution of per-cell mean speeds (the figure's colour
	// histogram).
	var speeds []float64
	inv.Each(func(k inventory.GroupKey, s *inventory.CellSummary) bool {
		if k.Set == inventory.GSCell && s.Speed.Weight() > 0 {
			speeds = append(speeds, s.Speed.Mean())
		}
		return true
	})
	sort.Float64s(speeds)
	q := func(f float64) float64 { return speeds[int(f*float64(len(speeds)-1))] }
	fmt.Printf("  per-cell mean speed distribution: p10=%.1f p50=%.1f p90=%.1f kn\n", q(0.1), q(0.5), q(0.9))
	return nil
}

func (l *lab) runFig4() error {
	inv, _, err := l.ensureInv(6)
	if err != nil {
		return err
	}
	names := []string{"fig4_baltic_tripfreq.png", "fig4_baltic_speed.png", "fig4_baltic_course.png"}
	imgs := []func() error{
		func() error {
			return render.WritePNG(render.TripFrequencyMap(inv, render.BalticBox, l.width/2), filepath.Join(l.outDir, names[0]))
		},
		func() error {
			return render.WritePNG(render.SpeedMap(inv, render.BalticBox, l.width/2, 24), filepath.Join(l.outDir, names[1]))
		},
		func() error {
			return render.WritePNG(render.CourseMap(inv, render.BalticBox, l.width/2), filepath.Join(l.outDir, names[2]))
		},
	}
	for i, f := range imgs {
		if err := f(); err != nil {
			return err
		}
		fmt.Printf("  wrote %s\n", filepath.Join(l.outDir, names[i]))
	}
	baltic := 0
	var speedSum float64
	for _, c := range inv.Cells(inventory.GSCell) {
		if render.BalticBox.Contains(c.LatLng()) {
			baltic++
			if s, ok := inv.Cell(c); ok && s.Speed.Weight() > 0 {
				speedSum += s.Speed.Mean()
			}
		}
	}
	fmt.Println("paper (Figure 4): Baltic trip frequency, loitering (speed), separation schemes (course)")
	fmt.Printf("measured: %d Baltic cells populated", baltic)
	if baltic > 0 {
		fmt.Printf(", mean of cell speed means %.1f kn", speedSum/float64(baltic))
	}
	fmt.Println()
	return nil
}

func (l *lab) runFig5() error {
	inv, _, err := l.ensureInv(6)
	if err != nil {
		return err
	}
	path := filepath.Join(l.outDir, "fig5_ata.png")
	if err := render.WritePNG(render.ATAMap(inv, render.WorldBox, l.width), path); err != nil {
		return err
	}
	fmt.Println("paper (Figure 5): global average actual time to destination per cell (res 6)")
	fmt.Printf("measured: wrote %s\n", path)
	// Shape: ATA must be near zero in destination-port approach cells and
	// large mid-ocean. Sample: correlate per-cell ATA with distance to the
	// cell's top destination.
	var pts []distATA
	inv.Each(func(k inventory.GroupKey, s *inventory.CellSummary) bool {
		if k.Set != inventory.GSCell || s.ATA.Weight() == 0 {
			return true
		}
		dest, _ := s.TopDestination()
		if p, ok := l.gaz.ByID(dest); ok {
			pts = append(pts, distATA{
				distKm: geo.Haversine(k.Cell.LatLng(), p.Pos) / 1000,
				ataH:   s.ATA.Mean() / 3600,
			})
		}
		return true
	})
	corr := correlation(pts)
	fmt.Printf("  cells with ATA: %d; corr(distance-to-top-destination, mean ATA) = %.2f (expect strongly positive)\n",
		len(pts), corr)
	return nil
}

// distATA pairs a cell's distance to its top destination with its mean ATA.
type distATA struct{ distKm, ataH float64 }

func correlation(pts []distATA) float64 {
	n := float64(len(pts))
	if n < 2 {
		return 0
	}
	var sx, sy float64
	for _, p := range pts {
		sx += p.distKm
		sy += p.ataH
	}
	mx, my := sx/n, sy/n
	var cov, vx, vy float64
	for _, p := range pts {
		cov += (p.distKm - mx) * (p.ataH - my)
		vx += (p.distKm - mx) * (p.distKm - mx)
		vy += (p.ataH - my) * (p.ataH - my)
	}
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}

func (l *lab) runFig6() error {
	inv, _, err := l.ensureInv(6)
	if err != nil {
		return err
	}
	var ids []model.PortID
	counts := map[model.PortID]int{}
	for _, name := range []string{"Singapore", "Shanghai", "Rotterdam"} {
		p, ok := l.gaz.ByName(name)
		if !ok {
			return fmt.Errorf("gazetteer missing %s", name)
		}
		ids = append(ids, p.ID)
	}
	for _, c := range inv.Cells(inventory.GSCell) {
		if top, _, ok := inv.MostFrequentDestination(c); ok {
			for _, id := range ids {
				if top == id {
					counts[id]++
				}
			}
		}
	}
	path := filepath.Join(l.outDir, "fig6_destinations.png")
	if err := render.WritePNG(render.DestinationMap(inv, render.WorldBox, l.width, ids), path); err != nil {
		return err
	}
	fmt.Println("paper (Figure 6): cells whose most frequent 2022 destination is Singapore")
	fmt.Println("  (dark orange), Shanghai (purple) or Rotterdam (green); sparse but lane-shaped")
	fmt.Printf("measured: wrote %s\n", path)
	total := 0
	for _, id := range ids {
		fmt.Printf("  cells pointing at %-10s %6d\n", l.portName(id), counts[id])
		total += counts[id]
	}
	fmt.Printf("  shape check (all three ports attract cells): %v\n",
		counts[ids[0]] > 0 && counts[ids[1]] > 0 && counts[ids[2]] > 0)
	return nil
}

// ------------------------------------------------------------------------

func (l *lab) runQueryHits() error {
	inv, stats, err := l.ensureInv(6)
	if err != nil {
		return err
	}
	inv7, stats7, err := l.ensureInv(7)
	if err != nil {
		return err
	}
	fmt.Println("paper (§4): per-location statistics from the inventory need 99.7% (res 6)")
	fmt.Println("  and 98.4% (res 7) fewer record hits than an online full scan")
	report := func(res int, inv *inventory.Inventory, raw int64) {
		groups := int64(inv.CountGroups(inventory.GSCell))
		// A full scan touches every raw record; an inventory point query
		// touches one group (the paper's "hits" framing compares records
		// scanned to groups stored).
		reduction := 1 - float64(groups)/float64(raw)
		fmt.Printf("  res %d: full scan %d record hits; inventory %d groups → %.2f%% fewer hits\n",
			res, raw, groups, reduction*100)
	}
	report(6, inv, stats.RawRecords)
	report(7, inv7, stats7.RawRecords)

	// Wall-clock: scan all records for a cell vs one map lookup.
	if err := l.ensureSim(); err != nil {
		return err
	}
	cells := inv.Cells(inventory.GSCell)
	target := cells[len(cells)/2]
	scanStart := time.Now()
	var hits int
	for _, track := range l.tracks {
		for _, r := range track {
			if hexgrid.LatLngToCell(r.Pos, 6) == target {
				hits++
			}
		}
	}
	scanDur := time.Since(scanStart)
	lookupStart := time.Now()
	const lookups = 10000
	for i := 0; i < lookups; i++ {
		if _, ok := inv.Cell(target); !ok {
			return fmt.Errorf("target cell vanished")
		}
	}
	lookupDur := time.Since(lookupStart) / lookups
	fmt.Printf("  wall clock: full scan of %d records = %s; one inventory lookup = %s (%.0fx speedup)\n",
		stats.RawRecords, scanDur.Round(time.Microsecond), lookupDur,
		float64(scanDur)/float64(lookupDur))
	return nil
}

// ------------------------------------------------------------------------

func (l *lab) runETA() error {
	inv, _, err := l.ensureInv(6)
	if err != nil {
		return err
	}
	est := eta.New(inv)
	voys := l.completedVoyages()
	fmt.Println("paper (§4.1.2): per-cell ATA statistics as a baseline ETA estimator")
	fmt.Printf("measured over %d completed voyages (leave-in evaluation):\n", len(voys))
	// MAE by trip-progress quartile.
	type bucket struct {
		sumAbs float64
		sumRel float64
		n      int
		nRel   int
	}
	buckets := make([]bucket, 4)
	for _, v := range voys {
		track := l.trackDuring(v)
		dur := float64(v.ArriveTime - v.DepartTime)
		if dur <= 0 || len(track) < 8 {
			continue
		}
		for _, r := range track {
			e, ok := est.Estimate(eta.Query{Pos: r.Pos, VType: v.VType, Origin: v.Route.Origin, Dest: v.Route.Dest})
			if !ok {
				continue
			}
			truth := float64(v.ArriveTime - r.Time)
			progress := float64(r.Time-v.DepartTime) / dur
			bi := int(progress * 4)
			if bi > 3 {
				bi = 3
			}
			b := &buckets[bi]
			b.sumAbs += math.Abs(e.Mean.Seconds() - truth)
			if truth > 3600 {
				b.sumRel += math.Abs(e.Mean.Seconds()-truth) / truth
				b.nRel++
			}
			b.n++
		}
	}
	for i, b := range buckets {
		if b.n == 0 {
			continue
		}
		rel := 0.0
		if b.nRel > 0 {
			rel = 100 * b.sumRel / float64(b.nRel)
		}
		fmt.Printf("  trip progress %d-%d%%: MAE %7s   rel. error %5.1f%%  (n=%d)\n",
			i*25, (i+1)*25, durS(b.sumAbs/float64(b.n)), rel, b.n)
	}
	// The paper positions per-cell ATA as a usable baseline; the check is
	// that mid-trip estimates land within a small fraction of the true
	// remaining time.
	midOK := true
	for _, b := range buckets[1:3] {
		if b.nRel == 0 || b.sumRel/float64(b.nRel) > 0.15 {
			midOK = false
		}
	}
	fmt.Printf("shape check (mid-trip relative error < 15%%): %v\n", midOK)
	return nil
}

// ------------------------------------------------------------------------

func (l *lab) runDest() error {
	inv, _, err := l.ensureInv(6)
	if err != nil {
		return err
	}
	voys := l.completedVoyages()
	fmt.Println("paper (§4.1.3): streaming top-N destination voting for vessels with")
	fmt.Println("  undisclosed destinations")
	fmt.Printf("measured over %d completed voyages:\n", len(voys))
	for _, frac := range []float64{0.2, 0.5, 0.9} {
		top1, top3, n := 0, 0, 0
		for _, v := range voys {
			track := l.trackDuring(v)
			if len(track) < 20 {
				continue
			}
			p := predict.New(inv, v.VType)
			for _, r := range track[:int(float64(len(track))*frac)] {
				p.Observe(r.Pos)
			}
			n++
			for rank, pr := range p.Top(3) {
				if pr.Port == v.Route.Dest {
					top3++
					if rank == 0 {
						top1++
					}
					break
				}
			}
		}
		if n == 0 {
			continue
		}
		fmt.Printf("  observed %3.0f%% of trip: top-1 %5.1f%%  top-3 %5.1f%%  (n=%d)\n",
			frac*100, 100*float64(top1)/float64(n), 100*float64(top3)/float64(n), n)
	}
	return nil
}

// ------------------------------------------------------------------------

func (l *lab) runRoute() error {
	inv, _, err := l.ensureInv(6)
	if err != nil {
		return err
	}
	voys := l.completedVoyages()
	fmt.Println("paper (§4.1.3): route forecast = A* over the OD key's transition graph")
	var evaluated, failed int
	var coverSum, hopSum float64
	for _, v := range voys {
		track := l.trackDuring(v)
		if len(track) < 40 {
			continue
		}
		destPort, _ := l.gaz.ByID(v.Route.Dest)
		start := track[len(track)/4]
		path, err := routing.Forecast(inv, v.Route.Origin, v.Route.Dest, v.VType, start.Pos, destPort.Pos)
		if err != nil {
			failed++
			continue
		}
		evaluated++
		hopSum += float64(len(path))
		remaining := track[len(track)/4:]
		covered := 0
		for _, r := range remaining {
			best := math.Inf(1)
			for _, c := range path {
				if d := geo.Haversine(r.Pos, c.LatLng()); d < best {
					best = d
				}
			}
			if best < 60e3 {
				covered++
			}
		}
		coverSum += float64(covered) / float64(len(remaining))
	}
	if evaluated == 0 {
		return fmt.Errorf("no voyages evaluated")
	}
	fmt.Printf("measured: %d forecasts (%d keys without history), mean path %d cells,\n",
		evaluated, failed, int(hopSum/float64(evaluated)))
	fmt.Printf("  mean coverage of the actual remaining track within 60 km: %.0f%%\n",
		100*coverSum/float64(evaluated))
	fmt.Printf("shape check (forecasts track reality): %v\n", coverSum/float64(evaluated) > 0.7)
	return nil
}

// ------------------------------------------------------------------------

func (l *lab) runAnomaly() error {
	inv, _, err := l.ensureInv(6)
	if err != nil {
		return err
	}
	// Pick a real Suez-transiting voyage from the run: re-routing THAT
	// voyage around the Cape must leave its OD key's historical cells —
	// the paper's route-deviation framing. (A global normalcy model alone
	// cannot flag the Cape lane, because other trades legitimately use it.)
	var voyage sim.Voyage
	for _, v := range l.completedVoyages() {
		if v.Route.Transits(sim.SuezCanal) {
			voyage = v
			break
		}
	}
	if voyage.MMSI == 0 {
		return fmt.Errorf("no Suez voyage in the dataset; increase -vessels or -days")
	}
	o, _ := l.gaz.ByID(voyage.Route.Origin)
	d, _ := l.gaz.ByID(voyage.Route.Dest)
	graph := l.sim.Graph()

	odCells := make(map[hexgrid.Cell]bool)
	for _, c := range inv.ODCells(voyage.Route.Origin, voyage.Route.Dest, voyage.VType) {
		odCells[c] = true
	}
	onRoute := func(p geo.LatLng) bool {
		for _, c := range hexgrid.GridDisk(hexgrid.LatLngToCell(p, 6), 2) {
			if odCells[c] {
				return true
			}
		}
		return false
	}
	offRouteFrac := func(blocked ...sim.Canal) float64 {
		route, err := graph.Plan(voyage.Route.Origin, voyage.Route.Dest, blocked...)
		if err != nil {
			panic(err)
		}
		var off, total float64
		for dist := 0.0; dist < route.DistM; dist += 50e3 {
			total++
			if !onRoute(route.PointAtDistance(dist)) {
				off++
			}
		}
		return off / total
	}
	suezOff := offRouteFrac()
	capeOff := offRouteFrac(sim.SuezCanal)

	// Secondary: the unconditioned normalcy score of both tracks.
	sc := anomaly.New(inv)
	mkTrack := func(blocked ...sim.Canal) []model.PositionRecord {
		route, _ := graph.Plan(voyage.Route.Origin, voyage.Route.Dest, blocked...)
		var recs []model.PositionRecord
		for dist := 0.0; dist < route.DistM; dist += 50e3 {
			recs = append(recs, model.PositionRecord{
				Pos: route.PointAtDistance(dist), SOG: 14, COG: route.BearingAtDistance(dist),
			})
		}
		return recs
	}
	viaSuez := sc.ScoreTrack(mkTrack(), voyage.VType)
	viaCape := sc.ScoreTrack(mkTrack(sim.SuezCanal), voyage.VType)

	fmt.Println("paper motivation: the normalcy model exposes disruptions (2021 Suez")
	fmt.Println("  blockage forced Cape of Good Hope re-routing, +7000 miles)")
	fmt.Printf("measured for the %s voyage %s → %s:\n", voyage.VType, o.Name, d.Name)
	fmt.Printf("  off historical OD route, via Suez:  %5.1f%% of track points\n", suezOff*100)
	fmt.Printf("  off historical OD route, via Cape:  %5.1f%% of track points\n", capeOff*100)
	fmt.Printf("  global normalcy deviation: via Suez %.3f, via Cape %.3f\n", viaSuez, viaCape)
	fmt.Printf("shape check (re-route leaves the voyage's historical lane): %v (%.0f%% vs %.0f%%)\n",
		capeOff > suezOff+0.2, capeOff*100, suezOff*100)
	return nil
}

// ------------------------------------------------------------------------

func (l *lab) runAdaptive() error {
	inv7, _, err := l.ensureInv(7)
	if err != nil {
		return err
	}
	inv6, _, err := l.ensureInv(6)
	if err != nil {
		return err
	}
	ai, err := inventory.BuildAdaptive(inv7, 6, 50)
	if err != nil {
		return err
	}
	fine, coarse := ai.CountByResolution()
	fmt.Println("paper (§5 future work): non-uniform inventories — large cells in sparse")
	fmt.Println("  open sea, high resolution near dense areas")
	fmt.Printf("measured (threshold: densest child >= 50 records):\n")
	fmt.Printf("  uniform res 7: %d cells; uniform res 6: %d cells\n",
		inv7.CountGroups(inventory.GSCell), inv6.CountGroups(inventory.GSCell))
	fmt.Printf("  adaptive: %d cells (%d fine res-7 + %d coarse res-6)\n", ai.Len(), fine, coarse)
	fmt.Printf("  records conserved: %v\n", ai.TotalRecords() > 0)
	fmt.Printf("shape check (adaptive smaller than uniform fine, keeps fine cells in dense areas): %v\n",
		ai.Len() < inv7.CountGroups(inventory.GSCell) && fine > 0 && coarse > 0)
	// A dense-area port approach keeps res-7 cells.
	if cell, ok := ai.At(geo.Destination(sgpPos(l), 45, 20e3)); ok {
		fmt.Printf("  Singapore approach resolved at res %d\n", cell.Cell.Resolution())
	}
	return nil
}

func sgpPos(l *lab) geo.LatLng {
	p, _ := l.gaz.ByName("Singapore")
	return p.Pos
}

// ------------------------------------------------------------------------

func (l *lab) runBaseline() error {
	inv, _, err := l.ensureInv(6)
	if err != nil {
		return err
	}
	// Build the related-work baseline (§2, [32]): per-journey k-means +
	// convex hulls over the same trip data the inventory saw.
	idx := ports.NewIndex(l.gaz, ports.IndexResolution)
	byType := make(map[uint32]model.VesselType, len(l.sim.Fleet().Vessels))
	for _, v := range l.sim.Fleet().Vessels {
		byType[v.MMSI] = v.Type
	}
	var trips []baseline.TripPoints
	for vi := range l.tracks {
		cleaned := pipeline.CleanVessel(l.tracks[vi], 50)
		for _, trip := range pipeline.ExtractTrips(cleaned, idx, 2) {
			points := make([]geo.LatLng, len(trip.Records))
			for i, r := range trip.Records {
				points[i] = r.Pos
			}
			trips = append(trips, baseline.TripPoints{
				Origin: trip.Origin, Dest: trip.Dest,
				VType: byType[trip.Records[0].MMSI], Points: points,
			})
		}
	}
	start := time.Now()
	bm := baseline.BuildRouteModel(trips, 1)
	buildDur := time.Since(start)

	// Compare route coverage: what fraction of held-in trip points does
	// each model consider "on route"? Inventory membership is a grid-disk
	// test against the OD key's cell set (≈ 11 km reach at res 6). Points
	// are sampled to keep the comparison fast.
	var invCovered, bmCovered, total int
	for _, t := range trips {
		odCells := make(map[hexgrid.Cell]bool)
		for _, c := range inv.ODCells(t.Origin, t.Dest, t.VType) {
			odCells[c] = true
		}
		for i := 0; i < len(t.Points); i += 4 {
			p := t.Points[i]
			total++
			if bm.Covers(t.Origin, t.Dest, t.VType, p) {
				bmCovered++
			}
			for _, c := range hexgrid.GridDisk(hexgrid.LatLngToCell(p, 6), 1) {
				if odCells[c] {
					invCovered++
					break
				}
			}
		}
	}
	fmt.Println("paper (§2): clustering baselines (DBSCAN/k-means route extraction) are the")
	fmt.Println("  related work the grid inventory replaces; [20] reports DBSCAN's")
	fmt.Println("  sensitivity on density-skewed global AIS data")
	fmt.Printf("measured over %d extracted trips:\n", len(trips))
	fmt.Printf("  k-means hull baseline: %s, built in %s\n", bm.Describe(), buildDur.Round(time.Millisecond))
	fmt.Printf("  inventory (OD grouping set): %d groups\n", inv.CountGroups(inventory.GSCellODType))
	fmt.Printf("  on-route coverage of trip points: baseline %.1f%%, inventory %.1f%%\n",
		100*float64(bmCovered)/float64(total), 100*float64(invCovered)/float64(total))
	fmt.Println("  note: hulls answer only 'on route?'; the inventory also carries the")
	fmt.Println("  full Table-3 statistics per cell (speed/course/ETA/destinations)")
	return nil
}

// ------------------------------------------------------------------------

func (l *lab) runWeather() error {
	// The paper's §5 weather enrichment: re-simulate a small fleet with the
	// synthetic met-ocean field active, build the weather-conditioned
	// summaries, and show the per-sea-state speed series.
	field := weather.NewField(l.seed)
	gaz := ports.Default()
	vessels := l.vessels / 3
	if vessels < 10 {
		vessels = 10
	}
	s, err := sim.New(sim.Config{Vessels: vessels, Days: l.days, Seed: l.seed, Weather: field}, gaz)
	if err != nil {
		return err
	}
	idx := ports.NewIndex(gaz, ports.IndexResolution)
	winv := weather.NewInventory(field, 6)
	var used int
	for i := 0; i < vessels; i++ {
		recs, _ := s.VesselTrack(i)
		for _, r := range recs {
			if r.SOG < 5 {
				continue // berth/maneuvering reports would swamp the signal
			}
			if _, inPort := idx.PortAt(r.Pos); inPort {
				continue
			}
			winv.Add(r)
			used++
		}
	}
	fmt.Println("paper (§5 future work): combine AIS with weather data for enriched,")
	fmt.Println("  trade-specific summaries")
	fmt.Printf("measured: %d at-sea reports over %d weather cells (synthetic met-ocean field)\n",
		used, len(winv.Cells))
	fmt.Print(winv.Report())
	global := winv.GlobalSpeedBySeaState()
	var calm, rough float64
	var calmW, roughW float64
	for st, w := range global {
		if w.Weight() == 0 {
			continue
		}
		if st <= 3 {
			calm += w.Mean() * w.Weight()
			calmW += w.Weight()
		} else if st >= 5 {
			rough += w.Mean() * w.Weight()
			roughW += w.Weight()
		}
	}
	if calmW > 0 && roughW > 0 {
		fmt.Printf("shape check (speeds drop in heavy seas): %v (calm %.1f kn vs rough %.1f kn)\n",
			rough/roughW < calm/calmW, calm/calmW, rough/roughW)
	}
	return nil
}

// ------------------------------------------------------------------------

func (l *lab) runRollup() error {
	inv7, _, err := l.ensureInv(7)
	if err != nil {
		return err
	}
	inv6, _, err := l.ensureInv(6)
	if err != nil {
		return err
	}
	start := time.Now()
	rolled, err := inventory.RollUp(inv7, 6)
	if err != nil {
		return err
	}
	dur := time.Since(start)
	recOf := func(inv *inventory.Inventory) (total uint64) {
		inv.Each(func(k inventory.GroupKey, s *inventory.CellSummary) bool {
			if k.Set == inventory.GSCell {
				total += s.Records
			}
			return true
		})
		return total
	}
	fmt.Println("paper (§5 future work): hierarchical use of the index — summaries at a")
	fmt.Println("  fine resolution merge to the coarser level without re-scanning raw data")
	fmt.Printf("measured: rolled %d res-7 groups into %d res-6 groups in %s\n",
		inv7.Len(), rolled.Len(), dur.Round(time.Millisecond))
	fmt.Printf("  records: direct res-6 build %d, rolled-up %d (equal: %v)\n",
		recOf(inv6), recOf(rolled), recOf(inv6) == recOf(rolled))
	fmt.Printf("  cells: direct %d vs rolled %d (roll-up >= direct: %v — fine trips cross more cell boundaries)\n",
		inv6.CountGroups(inventory.GSCell), rolled.CountGroups(inventory.GSCell),
		rolled.CountGroups(inventory.GSCell) >= inv6.CountGroups(inventory.GSCell))
	// The fine inventory is the largest object of the whole run; release it
	// once the hierarchy experiments are done so later experiments have
	// headroom (it rebuilds on demand).
	delete(l.invs, 7)
	delete(l.stats, 7)
	return nil
}
