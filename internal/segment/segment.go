// Package segment implements the POLSEG1 columnar on-disk inventory
// format: the serving-side answer to the paper's Table-4 compression
// claim. A segment holds the same groups as a POLINV inventory file, but
// laid out so a server can answer cell and OD queries without loading the
// inventory into memory:
//
//   - groups are partitioned into the same 256 hash shards as the
//     in-memory inventory and the dataflow shuffle, one column block per
//     non-empty shard;
//   - inside a block the columns are struct-of-arrays: the sorted key
//     column (fixed 18-byte big-endian keys, binary-searchable), the
//     record-count column, the summary offset column and the summary
//     blob;
//   - every block is flate-compressed and carries its CRC32C and sizes in
//     the footer index, so a reader verifies exactly what it touches and
//     a replica can diff two segments shard-by-shard without opening the
//     blocks;
//   - the footer index plus fixed tail is all that Open reads, making
//     cold start O(index) instead of O(inventory).
//
// File layout (little-endian, keys big-endian for sort order):
//
//	header:  magic "POLSEG1\n" | version u32 | resolution u32 |
//	         rawRecords u64 | usedRecords u64 | builtUnix u64 |
//	         descLen u32 | desc bytes
//	blocks:  per non-empty shard, ascending shard id: flate(raw block)
//	         raw block: nGroups u32 | keys nGroups×18 (sorted) |
//	         records nGroups×u64 | offsets (nGroups+1)×u32 | blob
//	index:   nBlocks u32 | nBlocks × ( shard u16 | off u64 | compLen u32 |
//	         rawLen u32 | crc32c u32 | nGroups u32 | nCell u32 |
//	         nCellType u32 | nCellOD u32 )
//	tail:    indexOff u64 | indexLen u32 | indexCRC u32 | headerLen u32 |
//	         headerCRC u32 | totalGroups u64 | magic "POLSEGE\n"
//
// Every byte of the file is covered by some checksum: the header by
// headerCRC, each block by its index entry, the index by indexCRC, and
// the tail by its magic plus geometry checks against the file size — so
// a single flipped bit anywhere is detected at open or on first touch of
// the damaged block.
//
// Corruption anywhere — truncation, a flipped bit in a block, a garbled
// index — surfaces as a typed error wrapping ErrCorrupt; a segment reader
// never returns silently wrong query results, because every block's
// CRC32C is verified before its bytes are parsed.
package segment

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"github.com/patternsoflife/pol/internal/inventory"
)

// IsSegment reports whether a file beginning with prefix is a POLSEG1
// columnar segment — the 8-byte magic sniff format-agnostic loaders use
// to decide between segment.Open and inventory.LoadFile.
func IsSegment(prefix []byte) bool {
	return len(prefix) >= len(segMagic) && string(prefix[:len(segMagic)]) == string(segMagic)
}

var (
	segMagic  = []byte("POLSEG1\n")
	tailMagic = []byte("POLSEGE\n")
)

const segVersion = 1

// Errors returned on malformed segments. All wrap ErrCorrupt, so callers
// that only care about "is this file damaged" can errors.Is against the
// one sentinel; the finer sentinels distinguish the failure mode in tests
// and logs.
var (
	// ErrCorrupt is the root sentinel for any malformed-segment error.
	ErrCorrupt = errors.New("corrupt segment")
	// ErrTruncated wraps ErrCorrupt: the file ends before a structure does.
	ErrTruncated = fmt.Errorf("truncated: %w", ErrCorrupt)
	// ErrChecksum wraps ErrCorrupt: stored and computed CRC32C disagree.
	ErrChecksum = fmt.Errorf("checksum mismatch: %w", ErrCorrupt)
	// ErrBadMagic wraps ErrCorrupt: header or tail magic is wrong.
	ErrBadMagic = fmt.Errorf("bad magic: %w", ErrCorrupt)
)

// crcTable is the Castagnoli table, matching the checkpoint manifests.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// CRC returns the CRC32C (Castagnoli) of b — the same polynomial the
// checkpoint manifests and block index use.
func CRC(b []byte) uint32 { return crc32.Checksum(b, crcTable) }

const (
	headerFixedLen = 8 + 4 + 4 + 8 + 8 + 8 + 4 // magic..descLen, before desc
	indexEntryLen  = 2 + 8 + 4 + 4 + 4 + 4 + 3*4

	// TailLen is the fixed byte length of the segment tail. A replica
	// fetches exactly the last TailLen bytes of a remote segment to learn
	// where the index lives.
	TailLen = 8 + 4 + 4 + 4 + 4 + 8 + 8
)

// BlockInfo describes one shard's column block as recorded in the footer
// index: where its compressed bytes live, their CRC32C, and the group
// counts per grouping set. Two segments' blocks for the same shard with
// equal (CompLen, CRC) hold identical bytes for delta-sync purposes.
type BlockInfo struct {
	Shard   int    // shard id, 0..inventory.ShardCount-1
	Off     int64  // absolute file offset of the compressed block
	CompLen uint32 // compressed byte length
	RawLen  uint32 // decompressed byte length
	CRC     uint32 // CRC32C of the compressed bytes
	NGroups uint32 // groups in the block
	NSet    [3]uint32
}

// Tail is the decoded fixed-size segment tail.
type Tail struct {
	IndexOff    int64
	IndexLen    int
	IndexCRC    uint32
	HeaderLen   int
	HeaderCRC   uint32
	TotalGroups int64
}

// ParseTail decodes the fixed-size tail from the final TailLen bytes of a
// segment and sanity-checks its geometry against the total file size.
func ParseTail(b []byte, fileSize int64) (Tail, error) {
	if len(b) != TailLen {
		return Tail{}, fmt.Errorf("segment: tail is %d bytes, want %d: %w", len(b), TailLen, ErrTruncated)
	}
	if string(b[TailLen-8:]) != string(tailMagic) {
		return Tail{}, fmt.Errorf("segment: tail magic %q: %w", b[TailLen-8:], ErrBadMagic)
	}
	t := Tail{
		IndexOff:    int64(binary.LittleEndian.Uint64(b[0:8])),
		IndexLen:    int(binary.LittleEndian.Uint32(b[8:12])),
		IndexCRC:    binary.LittleEndian.Uint32(b[12:16]),
		HeaderLen:   int(binary.LittleEndian.Uint32(b[16:20])),
		HeaderCRC:   binary.LittleEndian.Uint32(b[20:24]),
		TotalGroups: int64(binary.LittleEndian.Uint64(b[24:32])),
	}
	if t.IndexOff < headerFixedLen || t.IndexLen < 4 ||
		t.IndexOff+int64(t.IndexLen)+TailLen != fileSize {
		return Tail{}, fmt.Errorf("segment: index geometry (off=%d len=%d size=%d): %w",
			t.IndexOff, t.IndexLen, fileSize, ErrCorrupt)
	}
	if t.HeaderLen < headerFixedLen || int64(t.HeaderLen) > t.IndexOff {
		return Tail{}, fmt.Errorf("segment: header length %d: %w", t.HeaderLen, ErrCorrupt)
	}
	return t, nil
}

// ParseIndex verifies the index bytes against the tail's CRC and decodes
// the block table. Blocks come back in file order: strictly ascending
// shard ids, contiguous offsets.
func ParseIndex(b []byte, t Tail) ([]BlockInfo, error) {
	if CRC(b) != t.IndexCRC {
		return nil, fmt.Errorf("segment: index: %w", ErrChecksum)
	}
	if len(b) < 4 {
		return nil, fmt.Errorf("segment: index: %w", ErrTruncated)
	}
	n := int(binary.LittleEndian.Uint32(b))
	if len(b) != 4+n*indexEntryLen || n > inventory.ShardCount {
		return nil, fmt.Errorf("segment: index holds %d entries in %d bytes: %w", n, len(b), ErrCorrupt)
	}
	blocks := make([]BlockInfo, n)
	var total int64
	prevShard := -1
	for i := range blocks {
		e := b[4+i*indexEntryLen:]
		bi := BlockInfo{
			Shard:   int(binary.LittleEndian.Uint16(e[0:2])),
			Off:     int64(binary.LittleEndian.Uint64(e[2:10])),
			CompLen: binary.LittleEndian.Uint32(e[10:14]),
			RawLen:  binary.LittleEndian.Uint32(e[14:18]),
			CRC:     binary.LittleEndian.Uint32(e[18:22]),
			NGroups: binary.LittleEndian.Uint32(e[22:26]),
		}
		for s := 0; s < 3; s++ {
			bi.NSet[s] = binary.LittleEndian.Uint32(e[26+4*s:])
		}
		if bi.Shard <= prevShard || bi.Shard >= inventory.ShardCount {
			return nil, fmt.Errorf("segment: index shard order (%d after %d): %w", bi.Shard, prevShard, ErrCorrupt)
		}
		if bi.Off < headerFixedLen || bi.Off+int64(bi.CompLen) > t.IndexOff {
			return nil, fmt.Errorf("segment: block %d outside data region: %w", bi.Shard, ErrCorrupt)
		}
		if bi.NSet[0]+bi.NSet[1]+bi.NSet[2] != bi.NGroups {
			return nil, fmt.Errorf("segment: block %d set counts: %w", bi.Shard, ErrCorrupt)
		}
		prevShard = bi.Shard
		total += int64(bi.NGroups)
		blocks[i] = bi
	}
	if total != t.TotalGroups {
		return nil, fmt.Errorf("segment: index counts %d groups, tail says %d: %w", total, t.TotalGroups, ErrCorrupt)
	}
	return blocks, nil
}
