#!/bin/sh
# Benchmark suite — regenerates the committed machine-readable benchmark
# results and prints the headline go-test benchmarks. Run from the
# repository root:
#
#   ./scripts/bench.sh            # writes BENCH_PR4.json
#   ./scripts/bench.sh results.json
set -e

out="${1:-BENCH_PR4.json}"

echo "== polbench micro-benchmark suite → $out =="
go run ./cmd/polbench -json "$out" -vessels 30 -days 15

echo "== headline benchmarks (publish COW vs clone, shuffle allocs) =="
go test -run='^$' -bench='PublishLargeInventory|PublishDelta|ShuffleAllocs' -benchmem ./... 2>&1 | grep -E 'Benchmark|^ok|^PASS'
