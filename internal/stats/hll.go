package stats

import (
	"math"
	"math/bits"
	"sort"
)

// HLLPrecision is the register-count exponent used throughout the inventory:
// 2^11 = 2048 registers ≈ 2 KiB per dense sketch, standard error ≈ 2.3%.
const HLLPrecision = 11

// sparseLimit is the number of occupied registers beyond which a sketch
// switches from the sparse to the dense representation.
const sparseLimit = 128

// HyperLogLog estimates the number of distinct 64-bit hashed values observed
// (Flajolet et al., with linear-counting small-range correction). It is used
// for the paper's distinct-ship and distinct-trip statistics (Table 3).
//
// Most grid cells see only a handful of distinct vessels, so the sketch
// starts in a sparse representation — a small sorted array of
// (register, rank) pairs — and promotes itself to the dense 2^p register
// array only past sparseLimit occupied registers. This keeps a
// hundred-thousand-cell inventory hundreds of megabytes smaller with
// identical estimates.
//
// Construct with NewHyperLogLog; sketches of equal precision merge by
// register-wise maximum.
type HyperLogLog struct {
	p         uint8
	registers []uint8  // dense representation; nil while sparse
	sparse    []uint32 // packed idx<<8|rank, sorted by idx; nil when dense
}

// NewHyperLogLog returns an empty sketch with 2^p registers. Precision is
// clamped to [4, 16].
func NewHyperLogLog(p uint8) *HyperLogLog {
	if p < 4 {
		p = 4
	}
	if p > 16 {
		p = 16
	}
	return &HyperLogLog{p: p}
}

// numRegisters returns 2^p.
func (h *HyperLogLog) numRegisters() int { return 1 << h.p }

// AddHash records an already-hashed value. Use Mix64 or HashString to hash
// raw identifiers.
func (h *HyperLogLog) AddHash(hash uint64) {
	idx := uint32(hash >> (64 - h.p))
	rank := uint8(bits.LeadingZeros64(hash<<h.p|1)) + 1
	h.setRegister(idx, rank)
}

func (h *HyperLogLog) setRegister(idx uint32, rank uint8) {
	if h.registers != nil {
		if rank > h.registers[idx] {
			h.registers[idx] = rank
		}
		return
	}
	// Sparse: binary search the packed, idx-sorted array.
	i := sort.Search(len(h.sparse), func(i int) bool { return h.sparse[i]>>8 >= idx })
	if i < len(h.sparse) && h.sparse[i]>>8 == idx {
		if rank > uint8(h.sparse[i]) {
			h.sparse[i] = idx<<8 | uint32(rank)
		}
		return
	}
	h.sparse = append(h.sparse, 0)
	copy(h.sparse[i+1:], h.sparse[i:])
	h.sparse[i] = idx<<8 | uint32(rank)
	if len(h.sparse) > sparseLimit {
		h.densify()
	}
}

// densify converts the sparse array into the dense register file.
func (h *HyperLogLog) densify() {
	if h.registers != nil {
		return
	}
	h.registers = make([]uint8, h.numRegisters())
	for _, packed := range h.sparse {
		idx := packed >> 8
		rank := uint8(packed)
		if rank > h.registers[idx] {
			h.registers[idx] = rank
		}
	}
	h.sparse = nil
}

// AddUint64 hashes and records an integer identifier.
func (h *HyperLogLog) AddUint64(v uint64) { h.AddHash(Mix64(v)) }

// AddString hashes and records a string identifier.
func (h *HyperLogLog) AddString(s string) { h.AddHash(HashString(s)) }

// Merge folds another sketch into this one. Sketches must share precision;
// mismatched precision merges are ignored (callers construct all sketches
// with HLLPrecision).
func (h *HyperLogLog) Merge(o *HyperLogLog) {
	if o == nil || o.p != h.p {
		return
	}
	if o.registers != nil {
		h.densify()
		for i, r := range o.registers {
			if r > h.registers[i] {
				h.registers[i] = r
			}
		}
		return
	}
	for _, packed := range o.sparse {
		h.setRegister(packed>>8, uint8(packed))
	}
}

// Estimate returns the approximate distinct count.
func (h *HyperLogLog) Estimate() uint64 {
	m := float64(h.numRegisters())
	var sum float64
	var zeros int
	if h.registers != nil {
		for _, r := range h.registers {
			sum += 1 / float64(uint64(1)<<r)
			if r == 0 {
				zeros++
			}
		}
	} else {
		zeros = h.numRegisters() - len(h.sparse)
		sum = float64(zeros)
		for _, packed := range h.sparse {
			sum += 1 / float64(uint64(1)<<uint8(packed))
		}
	}
	alpha := 0.7213 / (1 + 1.079/m)
	e := alpha * m * m / sum
	if e <= 2.5*m && zeros > 0 {
		// Small-range correction: linear counting.
		e = m * math.Log(m/float64(zeros))
	}
	return uint64(e + 0.5)
}

// IsEmpty reports whether the sketch has seen no values.
func (h *HyperLogLog) IsEmpty() bool {
	if h.registers == nil {
		return len(h.sparse) == 0
	}
	for _, r := range h.registers {
		if r != 0 {
			return false
		}
	}
	return true
}

// Occupied returns the number of non-zero registers (diagnostics, tests).
func (h *HyperLogLog) Occupied() int {
	if h.registers == nil {
		return len(h.sparse)
	}
	n := 0
	for _, r := range h.registers {
		if r != 0 {
			n++
		}
	}
	return n
}

// register returns one register value regardless of representation.
func (h *HyperLogLog) register(idx uint32) uint8 {
	if h.registers != nil {
		return h.registers[idx]
	}
	i := sort.Search(len(h.sparse), func(i int) bool { return h.sparse[i]>>8 >= idx })
	if i < len(h.sparse) && h.sparse[i]>>8 == idx {
		return uint8(h.sparse[i])
	}
	return 0
}

// Encoding modes.
const (
	hllModeRLE uint8 = 0 // (zero-run u32, value u8) pairs — cheap when sparse
	hllModeRaw uint8 = 1 // all 2^p registers verbatim — cheap when dense
)

// AppendBinary appends the sketch's binary encoding to buf, choosing
// whichever of the run-length and raw layouts is smaller for the current
// occupancy.
func (h *HyperLogLog) AppendBinary(buf []byte) []byte {
	buf = append(buf, h.p)
	n := uint32(h.numRegisters())
	// RLE costs 5 bytes per occupied register (plus a terminator); raw
	// costs one byte per register.
	if occupied := h.Occupied(); occupied*5+5 >= int(n) {
		buf = append(buf, hllModeRaw)
		h.densify()
		return append(buf, h.registers...)
	}
	buf = append(buf, hllModeRLE)
	i := uint32(0)
	for i < n {
		run := uint32(0)
		for i < n && h.register(i) == 0 {
			i++
			run++
		}
		if i >= n {
			buf = appendU32(buf, run)
			buf = append(buf, 0)
			break
		}
		buf = appendU32(buf, run)
		buf = append(buf, h.register(i))
		i++
	}
	return buf
}

// DecodeHyperLogLog decodes a sketch from the front of data and returns the
// remaining bytes. Sketches with few occupied registers decode into the
// sparse representation.
func DecodeHyperLogLog(data []byte) (*HyperLogLog, []byte, error) {
	if len(data) < 2 {
		return nil, nil, ErrCorrupt
	}
	p := data[0]
	if p < 4 || p > 16 {
		return nil, nil, ErrCorrupt
	}
	mode := data[1]
	data = data[2:]
	h := NewHyperLogLog(p)
	n := uint32(h.numRegisters())
	switch mode {
	case hllModeRaw:
		if uint32(len(data)) < n {
			return nil, nil, ErrCorrupt
		}
		h.registers = make([]uint8, n)
		copy(h.registers, data[:n])
		return h, data[n:], nil
	case hllModeRLE:
		i := uint32(0)
		for i < n {
			run, rest, err := readU32(data)
			if err != nil {
				return nil, nil, err
			}
			data = rest
			if len(data) < 1 {
				return nil, nil, ErrCorrupt
			}
			v := data[0]
			data = data[1:]
			if i+run > n || (v != 0 && i+run >= n) {
				return nil, nil, ErrCorrupt
			}
			i += run
			if v != 0 {
				h.setRegister(i, v)
				i++
			} else if i != n {
				return nil, nil, ErrCorrupt
			}
		}
		return h, data, nil
	default:
		return nil, nil, ErrCorrupt
	}
}
