// Quickstart: simulate a small fleet, build the global inventory with the
// full pipeline, and query it — the minimal end-to-end tour of the system.
package main

import (
	"fmt"
	"log"

	"github.com/patternsoflife/pol/internal/dataflow"
	"github.com/patternsoflife/pol/internal/geo"
	"github.com/patternsoflife/pol/internal/inventory"
	"github.com/patternsoflife/pol/internal/model"
	"github.com/patternsoflife/pol/internal/pipeline"
	"github.com/patternsoflife/pol/internal/ports"
	"github.com/patternsoflife/pol/internal/sim"
)

func main() {
	log.SetFlags(0)

	// 1. A synthetic global AIS dataset: 30 commercial vessels sailing the
	// world's shipping lanes for three weeks.
	gaz := ports.Default()
	fleet, err := sim.New(sim.Config{Vessels: 30, Days: 21, Seed: 42}, gaz)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Run the paper's pipeline: clean → trips → enrich → project →
	// aggregate. Tracks are generated lazily per partition, in parallel.
	ctx := dataflow.NewContext(0)
	records := dataflow.Generate(ctx, 30, func(vessel int) []model.PositionRecord {
		recs, _ := fleet.VesselTrack(vessel)
		return recs
	})
	portIdx := ports.NewIndex(gaz, ports.IndexResolution)
	result, err := pipeline.Run(records, fleet.Fleet().StaticIndex(), portIdx, pipeline.Options{
		Resolution:  6, // ~36 km² hexagons, as in the paper
		Description: "quickstart",
	})
	if err != nil {
		log.Fatal(err)
	}
	inv := result.Inventory
	fmt.Printf("pipeline: %s\n\n", result.Stats)
	fmt.Printf("inventory: %d groups over %d cells (compression %.2f%%)\n\n",
		inv.Len(), len(inv.Cells(inventory.GSCell)), inv.Compression(inventory.GSCell)*100)

	// 3. Query the inventory for a location: the Strait of Dover, one of
	// the world's busiest shipping corridors.
	dover, ok := inv.At(geo.LatLng{Lat: 51.05, Lng: 1.45})
	if !ok {
		// A 30-vessel fleet may not have crossed Dover; fall back to the
		// busiest cell.
		dover = busiest(inv)
	}
	p10, p50, p90 := dover.SpeedPercentiles()
	fmt.Println("statistical summary for a busy cell:")
	fmt.Printf("  records:      %d from ~%d ships over ~%d trips\n",
		dover.Records, dover.Ships.Estimate(), dover.Trips.Estimate())
	fmt.Printf("  speed:        %.1f kn mean (p10/p50/p90 %.1f/%.1f/%.1f)\n",
		dover.Speed.Mean(), p10, p50, p90)
	fmt.Printf("  course:       %.0f° circular mean, concentration %.2f\n",
		dover.Course.Mean(), dover.Course.Resultant())
	fmt.Printf("  course bins:  %v (30° bins)\n", dover.CourseBins.Bins())
	if dest, count := dover.TopDestination(); dest != model.NoPort {
		if port, ok := gaz.ByID(dest); ok {
			fmt.Printf("  most frequent destination: %s (%d records)\n", port.Name, count)
		}
	}
}

func busiest(inv *inventory.Inventory) *inventory.CellSummary {
	var best *inventory.CellSummary
	inv.Each(func(k inventory.GroupKey, s *inventory.CellSummary) bool {
		if k.Set == inventory.GSCell && (best == nil || s.Records > best.Records) {
			best = s
		}
		return true
	})
	return best
}
