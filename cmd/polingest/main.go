// Command polingest is the standalone live ingestion daemon: it accepts
// timestamped NMEA feeds over TCP, maintains a continuously updated
// mobility inventory (cleaning, trip extraction, grid statistics — the
// full paper pipeline in online form), and serves the query API plus
// ingestion counters over HTTP. A write-ahead journal makes the state
// survive restarts; periodic checkpoints give read-only consumers a
// loadable inventory file.
//
// Usage:
//
//	polingest -listen :10110 -http :8080 -journal live.wal -checkpoint live.polinv
//
// Feed a recorded archive through it for a smoke test:
//
//	nc localhost 10110 < archive.nmea
//
// Endpoints (see internal/api for the query surface):
//
//	GET /v1/ingest/stats    live per-feed and engine counters (JSON),
//	                        including uptime and snapshot age
//	GET /v1/ops/anomalies   watchdog baselines and anomaly history
//	GET /v1/traces          recent distributed traces (tail-sampled);
//	                        /v1/traces/{id} returns one trace as a span
//	                        tree
//	GET /metrics            Prometheus-style telemetry
//	GET /healthz            liveness probe
//	GET /readyz             readiness: 503 until the first data snapshot;
//	                        a daemon running degraded (journal disk gone,
//	                        serving the last good snapshot read-only)
//	                        answers 200 "ready (degraded: ...)"
//	GET /debug/pprof/       profiling handlers (behind -pprof)
//	GET /v1/info, /v1/cell, /v1/eta, ...
//	GET /v1/repl/...        read-only replication surface (checkpoint
//	                        manifest + files, WAL long-poll, snapshot)
//	                        consumed by polserve -replica; see
//	                        internal/ingest's ReplHandler
//
// Under overload, -max-inflight bounds concurrent HTTP requests; excess
// requests are shed immediately with 429 + Retry-After rather than
// queued (counted in pol_http_shed_total). Fault injection points for
// robustness drills are armed via the POL_FAILPOINTS environment
// variable (see internal/fault).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"github.com/patternsoflife/pol/internal/api"
	"github.com/patternsoflife/pol/internal/fault"
	"github.com/patternsoflife/pol/internal/ingest"
	"github.com/patternsoflife/pol/internal/obs"
	"github.com/patternsoflife/pol/internal/obs/trace"
	"github.com/patternsoflife/pol/internal/ports"
)

func main() {
	var (
		listen    = flag.String("listen", ":10110", "NMEA feed listen address")
		httpAddr  = flag.String("http", ":8080", "HTTP listen address (query API + stats)")
		res       = flag.Int("res", 6, "hexgrid resolution")
		tick      = flag.Duration("tick", 2*time.Second, "inventory merge interval")
		journal   = flag.String("journal", "polingest.wal", "write-ahead journal path (empty disables durability)")
		ckpt      = flag.String("checkpoint", "", "periodic inventory checkpoint path (empty disables)")
		ckptEvery = flag.Int("checkpoint-every", 16, "merges between checkpoints")
		walSeg    = flag.Int64("wal-segment-bytes", 0, "journal segment rotation threshold (0 = default 64 MiB)")
		queue     = flag.Int("queue", 4096, "submission queue depth (backpressure bound)")
		inflight  = flag.Int("max-inflight", 0, "max concurrent HTTP requests before shedding with 429 (0 disables)")
		idle      = flag.Duration("idle-timeout", 5*time.Minute, "drop feeds silent for this long")
		pprofOn   = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		accessLog = flag.Bool("access-log", false, "log one structured line per HTTP request")
		wdTick    = flag.Duration("watchdog-tick", 10*time.Second, "anomaly watchdog sampling interval")
		flightDir = flag.String("flight-dir", "", "flight-recorder dump directory (default: the journal directory)")
	)
	flag.Parse()

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil)).With("app", "polingest")

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	if active := fault.Default().Active(); len(active) > 0 {
		logger.Warn("failpoints armed", "points", active)
	}

	reg := obs.NewRegistry()
	fdir := *flightDir
	if fdir == "" {
		switch {
		case *journal != "":
			fdir = filepath.Dir(*journal)
		case *ckpt != "":
			fdir = filepath.Dir(*ckpt)
		}
	}
	tr := trace.New(trace.Options{Service: "polingest", FlightDir: fdir})
	t0 := time.Now()
	eng, err := ingest.NewEngine(ingest.Options{
		Resolution:      *res,
		MergeEvery:      *tick,
		JournalPath:     *journal,
		CheckpointPath:  *ckpt,
		CheckpointEvery: *ckptEvery,
		WALSegmentBytes: *walSeg,
		QueueSize:       *queue,
		Description:     "polingest live inventory",
		Metrics:         reg,
		Tracer:          tr,
		Logf: func(format string, args ...any) {
			logger.With("sub", "engine").Warn(fmt.Sprintf(format, args...))
		},
	})
	if err != nil {
		logger.Error("engine start", "err", err)
		os.Exit(1)
	}
	if n := eng.Snapshot().Len(); n > 0 {
		logger.Info("journal replayed", "groups", n, "dur", time.Since(t0).Round(time.Millisecond))
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		logger.Error("feed listen", "err", err)
		os.Exit(1)
	}
	feeds := ingest.NewServer(eng, ln, ingest.ServerOptions{
		IdleTimeout: *idle,
		Logf: func(format string, args ...any) {
			logger.With("sub", "feeds").Info(fmt.Sprintf(format, args...))
		},
	})
	logger.Info("accepting NMEA feeds", "addr", ln.Addr().String())

	wd := obs.NewWatchdog(reg, obs.WatchdogOptions{
		Interval: *wdTick,
		Logger:   logger.With("sub", "watchdog"),
		OnAnomaly: func(a obs.Anomaly) {
			if path, err := tr.RecordFlight("watchdog-" + a.Series); err == nil && path != "" {
				logger.Warn("flight recorder dump", "reason", a.Series, "path", path)
			}
		},
	})
	eng.AttachWatchdog(wd)
	wd.Start()

	mux := http.NewServeMux()
	tr.Mount(mux)
	mux.Handle("/", api.NewLiveServer(eng, ports.Default()).WithMetrics(reg).WithTracing(tr).Handler())
	mux.Handle("GET /v1/ingest/stats", eng.StatsHandler())
	mux.Handle("GET /v1/ops/anomalies", wd.Handler())
	mux.Handle("GET /v1/repl/", eng.ReplHandler())
	mux.Handle("GET /metrics", reg.Handler())
	mux.Handle("GET /healthz", obs.HealthzHandler())
	mux.Handle("GET /readyz", obs.ReadyzDetailHandler(eng.ReadyDetail))
	if *pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		logger.Info("pprof enabled", "path", "/debug/pprof/")
	}

	var handler http.Handler = mux
	if *accessLog {
		handler = obs.AccessLog(logger.With("sub", "http"), handler)
	}
	handler = obs.Shed(reg, *inflight, handler)
	httpSrv := &http.Server{
		Addr:              *httpAddr,
		Handler:           handler,
		ReadTimeout:       10 * time.Second,
		ReadHeaderTimeout: 5 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	logger.Info("http listening", "addr", *httpAddr)

	select {
	case err := <-errc:
		logger.Error("http serve", "err", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	logger.Info("shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Error("http shutdown", "err", err)
	}
	wd.Stop()
	if err := feeds.Close(); err != nil {
		logger.Error("feed listener close", "err", err)
	}
	if err := eng.Close(); err != nil {
		logger.Error("engine close", "err", err)
	}
	logger.Info("bye")
}
