package ports

import (
	"math/rand"
	"testing"

	"github.com/patternsoflife/pol/internal/geo"
	"github.com/patternsoflife/pol/internal/model"
)

func TestDefaultGazetteer(t *testing.T) {
	g := Default()
	if g.Len() < 120 {
		t.Fatalf("gazetteer has %d ports, want >= 120 major ports", g.Len())
	}
	// IDs are sequential starting at 1.
	for i, p := range g.All() {
		if p.ID != model.PortID(i+1) {
			t.Fatalf("port %q has id %d, want %d", p.Name, p.ID, i+1)
		}
		if !p.Pos.Valid() {
			t.Errorf("port %q has invalid position %v", p.Name, p.Pos)
		}
		if p.Name == "" || p.Country == "" {
			t.Errorf("port %d missing name/country", p.ID)
		}
	}
}

func TestGazetteerNoDuplicateNames(t *testing.T) {
	g := Default()
	seen := map[string]bool{}
	for _, p := range g.All() {
		if seen[p.Name] {
			t.Errorf("duplicate port name %q", p.Name)
		}
		seen[p.Name] = true
	}
}

func TestGazetteerLookups(t *testing.T) {
	g := Default()
	sg, ok := g.ByName("Singapore")
	if !ok {
		t.Fatal("Singapore missing")
	}
	if sg.Size != SizeMega {
		t.Errorf("Singapore should be a mega port")
	}
	if got, ok := g.ByName("singapore"); !ok || got.ID != sg.ID {
		t.Error("name lookup must be case-insensitive")
	}
	byID, ok := g.ByID(sg.ID)
	if !ok || byID.Name != "Singapore" {
		t.Error("ByID round trip failed")
	}
	if _, ok := g.ByID(model.NoPort); ok {
		t.Error("NoPort must not resolve")
	}
	if _, ok := g.ByID(model.PortID(g.Len() + 1)); ok {
		t.Error("out-of-range id must not resolve")
	}
	if _, ok := g.ByName("Atlantis"); ok {
		t.Error("unknown name must not resolve")
	}
}

func TestPaperFigure6PortsPresent(t *testing.T) {
	// Figure 6 of the paper highlights Singapore, Shanghai and Rotterdam.
	g := Default()
	for _, name := range []string{"Singapore", "Shanghai", "Rotterdam"} {
		if _, ok := g.ByName(name); !ok {
			t.Errorf("port %q required by Figure 6 missing", name)
		}
	}
}

func TestNearest(t *testing.T) {
	g := Default()
	// A point in the North Sea off the Dutch coast is nearest Rotterdam or
	// Amsterdam-area ports.
	port, dist, ok := g.Nearest(geo.LatLng{Lat: 52.0, Lng: 3.9})
	if !ok {
		t.Fatal("nearest failed")
	}
	if port.Country != "NL" && port.Country != "BE" {
		t.Errorf("nearest to Dutch coast is %v", port)
	}
	if dist > 100000 {
		t.Errorf("distance %v m too large", dist)
	}
	empty := New(nil)
	if _, _, ok := empty.Nearest(geo.LatLng{}); ok {
		t.Error("empty gazetteer must report !ok")
	}
}

func TestPortContains(t *testing.T) {
	g := Default()
	rtm, _ := g.ByName("Rotterdam")
	if !rtm.Contains(rtm.Pos) {
		t.Error("port must contain its own center")
	}
	edge := geo.Destination(rtm.Pos, 90, rtm.FenceRadiusM()-100)
	if !rtm.Contains(edge) {
		t.Error("point just inside fence must be contained")
	}
	outside := geo.Destination(rtm.Pos, 90, rtm.FenceRadiusM()+1000)
	if rtm.Contains(outside) {
		t.Error("point outside fence must not be contained")
	}
}

func TestSizeClassProperties(t *testing.T) {
	if !(SizeMega.Weight() > SizeLarge.Weight() && SizeLarge.Weight() > SizeMedium.Weight()) {
		t.Error("weights must be ordered mega > large > medium")
	}
	if !(SizeMega.FenceRadiusM() > SizeLarge.FenceRadiusM() && SizeLarge.FenceRadiusM() > SizeMedium.FenceRadiusM()) {
		t.Error("fence radii must be ordered mega > large > medium")
	}
	for _, s := range []SizeClass{SizeMedium, SizeLarge, SizeMega} {
		if s.String() == "" {
			t.Error("size class must have a label")
		}
	}
}

func TestIndexFindsPortsEverywhereInsideFences(t *testing.T) {
	g := Default()
	idx := NewIndex(g, IndexResolution)
	if idx.CellCount() == 0 {
		t.Fatal("index is empty")
	}
	rng := rand.New(rand.NewSource(23))
	for _, p := range g.All() {
		// Sample points inside the fence; all must geofence to some port
		// (usually this one — a few ports legitimately overlap, e.g. LA and
		// Long Beach).
		for i := 0; i < 10; i++ {
			q := geo.Destination(p.Pos, rng.Float64()*360, rng.Float64()*p.FenceRadiusM()*0.95)
			id, ok := idx.PortAt(q)
			if !ok {
				t.Fatalf("point inside %s fence not geofenced", p.Name)
			}
			found, _ := g.ByID(id)
			if geo.Haversine(q, found.Pos) > found.FenceRadiusM() {
				t.Fatalf("geofenced to %s but outside its radius", found.Name)
			}
		}
	}
}

func TestIndexRejectsOpenSea(t *testing.T) {
	g := Default()
	idx := NewIndex(g, IndexResolution)
	openSea := []geo.LatLng{
		{Lat: 45, Lng: -40},  // mid North Atlantic
		{Lat: -30, Lng: 90},  // southern Indian Ocean
		{Lat: 20, Lng: -150}, // mid Pacific
		{Lat: 0, Lng: -25},   // equatorial Atlantic
	}
	for _, p := range openSea {
		if id, ok := idx.PortAt(p); ok {
			t.Errorf("open-sea point %v geofenced to port %d", p, id)
		}
	}
}

func TestIndexOverlapPrefersNearest(t *testing.T) {
	// Los Angeles and Long Beach fences overlap; a point at the LA center
	// must resolve to LA.
	g := Default()
	idx := NewIndex(g, IndexResolution)
	la, _ := g.ByName("Los Angeles")
	id, ok := idx.PortAt(la.Pos)
	if !ok || id != la.ID {
		got, _ := g.ByID(id)
		t.Errorf("LA center resolved to %v", got.Name)
	}
}

func TestSyntheticGazetteer(t *testing.T) {
	g := Synthetic(50, 42)
	if g.Len() != 50 {
		t.Fatalf("want 50 synthetic ports, got %d", g.Len())
	}
	again := Synthetic(50, 42)
	for i := range g.All() {
		if g.All()[i] != again.All()[i] {
			t.Fatal("synthetic gazetteer must be deterministic")
		}
	}
	sizes := map[SizeClass]int{}
	for _, p := range g.All() {
		sizes[p.Size]++
		if !p.Pos.Valid() {
			t.Errorf("invalid synthetic position %v", p.Pos)
		}
	}
	if sizes[SizeMega] == 0 || sizes[SizeLarge] == 0 || sizes[SizeMedium] == 0 {
		t.Errorf("synthetic ports must mix size classes: %v", sizes)
	}
}

func BenchmarkIndexPortAt(b *testing.B) {
	g := Default()
	idx := NewIndex(g, IndexResolution)
	sg, _ := g.ByName("Singapore")
	inFence := geo.Destination(sg.Pos, 45, 5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.PortAt(inFence)
	}
}

func BenchmarkIndexMiss(b *testing.B) {
	g := Default()
	idx := NewIndex(g, IndexResolution)
	openSea := geo.LatLng{Lat: 45, Lng: -40}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.PortAt(openSea)
	}
}
