package dataflow

import "time"

// Relational operations over keyed datasets: joins, union, distinct and
// per-key counting. The pipeline's static-information annotation is a
// broadcast join (the vessel inventory is small); the shuffle join exists
// for symmetric large-large cases.

// Union concatenates two datasets partition-wise. The result has the sum
// of the partition counts.
func Union[T any](a, b *Dataset[T], name string) *Dataset[T] {
	out := &Dataset[T]{ctx: a.ctx, nParts: a.nParts + b.nParts, name: name}
	out.compute = func(part int) ([]T, error) {
		if part < a.nParts {
			return a.compute(part)
		}
		return b.compute(part - a.nParts)
	}
	return out
}

// Distinct removes duplicate elements via a hash shuffle, so equal elements
// meet in one partition. The element type must be a valid map key.
func Distinct[T comparable](d *Dataset[T], name string, numPartitions int) *Dataset[T] {
	keyed := KeyBy(d, name+".key", func(x T) T { return x })
	shuffled := shuffle(keyed, name+".shuffle", numPartitions, HasherFor[T]())
	return MapPartitions(shuffled, name+".dedup", func(_ int, in []Pair[T, T]) []T {
		seen := make(map[T]struct{}, len(in))
		out := make([]T, 0, len(in))
		for _, p := range in {
			if _, dup := seen[p.Key]; !dup {
				seen[p.Key] = struct{}{}
				out = append(out, p.Key)
			}
		}
		return out
	})
}

// CountByKey returns the per-key element counts of a keyed dataset.
func CountByKey[K comparable, V any](d *Dataset[Pair[K, V]], name string, numPartitions int) *Dataset[Pair[K, int64]] {
	ones := Map(d, name+".ones", func(p Pair[K, V]) Pair[K, int64] {
		return Pair[K, int64]{Key: p.Key, Value: 1}
	})
	return ReduceByKey(ones, name, numPartitions, func(a, b int64) int64 { return a + b })
}

// BroadcastJoin joins a keyed dataset against a small in-memory map — the
// shape of the pipeline's vessel-static annotation (§3.3.1). Rows without a
// match are dropped (inner join); f builds the output row.
func BroadcastJoin[K comparable, V, S, R any](d *Dataset[Pair[K, V]], name string, small map[K]S, f func(K, V, S) R) *Dataset[R] {
	return MapPartitions(d, name, func(_ int, in []Pair[K, V]) []R {
		out := make([]R, 0, len(in))
		for _, p := range in {
			if s, ok := small[p.Key]; ok {
				out = append(out, f(p.Key, p.Value, s))
			}
		}
		return out
	})
}

// JoinedPair is one inner-join result row.
type JoinedPair[K comparable, L, R any] struct {
	Key   K
	Left  L
	Right R
}

// Join computes the inner join of two keyed datasets via a co-shuffle:
// both sides hash into the same partitioning, then each partition builds a
// map over the smaller-looking side. Every (left, right) combination per
// key is emitted.
func Join[K comparable, L, R any](left *Dataset[Pair[K, L]], right *Dataset[Pair[K, R]], name string, numPartitions int) *Dataset[JoinedPair[K, L, R]] {
	if numPartitions < 1 {
		numPartitions = left.ctx.parallelism
	}
	hash := HasherFor[K]()
	ls := shuffle(left, name+".left", numPartitions, hash)
	rs := shuffle(right, name+".right", numPartitions, hash)
	out := &Dataset[JoinedPair[K, L, R]]{ctx: left.ctx, nParts: numPartitions, name: name}
	out.compute = func(part int) (res []JoinedPair[K, L, R], err error) {
		defer guard(name, &err)
		lRows, err := ls.compute(part)
		if err != nil {
			return nil, err
		}
		rRows, err := rs.compute(part)
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		rightByKey := make(map[K][]R, len(rRows))
		for _, p := range rRows {
			rightByKey[p.Key] = append(rightByKey[p.Key], p.Value)
		}
		for _, lp := range lRows {
			for _, rv := range rightByKey[lp.Key] {
				res = append(res, JoinedPair[K, L, R]{Key: lp.Key, Left: lp.Value, Right: rv})
			}
		}
		left.ctx.metrics.add(name, int64(len(lRows)+len(rRows)), int64(len(res)), time.Since(t0))
		return res, nil
	}
	return out
}
