// Package cluster is the distributed build subsystem: a coordinator splits
// an inventory build into map tasks, schedules them to workers over TCP,
// and reduces the returned partial inventories into one result that is
// semantically identical to a single-process build — the repo's stdlib-only
// stand-in for the cluster MapReduce the paper runs its 2.7 B-report
// compression on.
//
// The wire protocol is length-prefixed gob frames over one TCP connection
// per worker. The worker opens the connection and introduces itself with a
// hello frame; from then on the coordinator pushes task and broadcast
// frames down, and the worker pushes heartbeat and result frames up.
// Robustness model: every task carries an idempotent ID, workers heartbeat
// while executing, and the coordinator re-queues tasks from dead or
// straggling workers with bounded, backed-off retries, dropping duplicate
// completions when a straggler finishes after its replacement.
//
// Two job shapes exist. Synthetic jobs partition the simulator's fleet by
// vessel index — every task regenerates its own vessel range from the
// shared seed, so no input bytes move. Archive jobs scan byte-range
// sections of the archive (splittable readers, internal/feed) and shuffle
// position records into vessel-hash buckets, so per-vessel cleaning and
// trip extraction see exactly the records a single process would. Two
// shuffle fabrics exist: the default peer shuffle, where the coordinator
// assigns bucket ownership up front (a roster of worker shuffle
// addresses) and scan workers stream compressed, CRC-checked bucket
// frames straight to the owning peer, which starts reducing a bucket the
// moment all of its section inputs have arrived; and the legacy
// coordinator shuffle, where every shuffled byte rides a scan result up
// to the coordinator and a reduce task back down.
package cluster

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"time"

	"github.com/patternsoflife/pol/internal/feed"
	"github.com/patternsoflife/pol/internal/model"
	"github.com/patternsoflife/pol/internal/pipeline"
	"github.com/patternsoflife/pol/internal/sim"
)

// DefaultMaxFrameBytes caps one protocol frame (1 GiB): large enough for a
// shuffle bucket of a month-scale build, small enough to reject a corrupt
// length prefix before allocating.
const DefaultMaxFrameBytes = 1 << 30

// msgType discriminates protocol frames.
type msgType uint8

const (
	msgHello     msgType = iota + 1 // worker → coordinator: introduction
	msgTask                         // coordinator → worker: task assignment
	msgStatics                      // coordinator → worker: statics broadcast
	msgHeartbeat                    // worker → coordinator: liveness + progress
	msgResult                       // worker → coordinator: task completion
	msgShutdown                     // coordinator → worker: job over, disconnect
	msgRoster                       // coordinator → worker: bucket ownership + peer addresses
)

// envelope is the one frame shape on the wire; exactly the field matching
// Type is populated.
type envelope struct {
	Type      msgType
	Hello     *helloMsg
	Task      *Task
	Statics   *staticsMsg
	Heartbeat *heartbeatMsg
	Result    *TaskResult
	Roster    *rosterMsg
}

// helloMsg introduces a worker. ShuffleAddr is the address peers dial to
// stream shuffle buckets to this worker; empty means the worker cannot own
// buckets (it can still run scan and synthetic tasks).
type helloMsg struct {
	Name        string
	Procs       int
	ShuffleAddr string
}

// BucketAssign maps one shuffle bucket to its owning worker. TaskID is the
// idempotency key the owner's reduce result reports under — stable across
// reassignments, so a straggling old owner's completion is dropped as a
// duplicate, never double-merged.
type BucketAssign struct {
	Bucket int
	Owner  string
	Addr   string
	TaskID uint64
}

// rosterMsg broadcasts the shuffle geometry of a peer-shuffle archive job:
// which worker owns which bucket, how many scan sections will contribute
// frames to each bucket, and the grid resolution reduces run at. Epoch
// increments on every reassignment; workers react to an ownership change
// by re-streaming their retained map outputs for the moved bucket to its
// new owner.
type rosterMsg struct {
	Epoch       int
	Sections    int
	Resolution  int
	TraceParent string
	Buckets     []BucketAssign
}

// staticsMsg broadcasts the merged vessel static inventory ahead of the
// reduce phase of an archive job.
type staticsMsg struct {
	Statics map[uint32]model.VesselInfo
}

// heartbeatMsg reports liveness while a task executes.
type heartbeatMsg struct {
	TaskID uint64
}

// TaskKind selects what a worker does with a task.
type TaskKind uint8

const (
	// TaskSimBuild: regenerate vessels [VesselLo, VesselHi) of the
	// synthetic fleet from Sim and run the full pipeline over them.
	TaskSimBuild TaskKind = iota + 1
	// TaskScan: decode one archive section; return statics and positions
	// bucketed by vessel hash into Buckets buckets.
	TaskScan
	// TaskReduceBuild: run the full pipeline over a vessel-complete record
	// block using the broadcast statics.
	TaskReduceBuild
)

// String labels the kind for logs and metrics.
func (k TaskKind) String() string {
	switch k {
	case TaskSimBuild:
		return "sim-build"
	case TaskScan:
		return "scan"
	case TaskReduceBuild:
		return "reduce-build"
	default:
		return "unknown"
	}
}

// SimSpec is the wire form of the simulator configuration: the seed and
// shape parameters that let every worker regenerate an identical fleet.
// (The weather field is not shippable; distributed synthetic builds run
// calm-water, like the defaults.)
type SimSpec struct {
	Vessels          int
	Days             int
	Seed             int64
	StartUnix        int64
	ReportInterval   float64
	MooredInterval   float64
	DropoutRate      float64
	NoiseRate        float64
	BlockSuezFromDay int
	BlockSuezToDay   int
}

// SpecFromConfig captures a simulator configuration for the wire.
func SpecFromConfig(c sim.Config) SimSpec {
	return SimSpec{
		Vessels:          c.Vessels,
		Days:             c.Days,
		Seed:             c.Seed,
		StartUnix:        c.Start.Unix(),
		ReportInterval:   c.ReportInterval,
		MooredInterval:   c.MooredInterval,
		DropoutRate:      c.DropoutRate,
		NoiseRate:        c.NoiseRate,
		BlockSuezFromDay: c.BlockSuezFromDay,
		BlockSuezToDay:   c.BlockSuezToDay,
	}
}

// Config reconstructs the simulator configuration on the worker.
func (s SimSpec) Config() sim.Config {
	c := sim.Config{
		Vessels:          s.Vessels,
		Days:             s.Days,
		Seed:             s.Seed,
		ReportInterval:   s.ReportInterval,
		MooredInterval:   s.MooredInterval,
		DropoutRate:      s.DropoutRate,
		NoiseRate:        s.NoiseRate,
		BlockSuezFromDay: s.BlockSuezFromDay,
		BlockSuezToDay:   s.BlockSuezToDay,
	}
	if s.StartUnix != 0 {
		c.Start = time.Unix(s.StartUnix, 0).UTC()
	}
	return c
}

// Task is one schedulable unit of work. ID is stable across retries —
// the idempotency key the coordinator dedupes completions on; Attempt
// counts executions for logs.
type Task struct {
	ID         uint64
	Attempt    int
	Kind       TaskKind
	Resolution int

	// TraceParent carries the coordinator's job-trace context in W3C
	// traceparent form, so the worker's execution span joins the same
	// distributed trace the client started. Empty on untraced jobs; gob
	// omits it for old peers, which simply run untraced.
	TraceParent string

	// TaskSimBuild:
	Sim                SimSpec
	VesselLo, VesselHi int

	// TaskScan:
	Section feed.Section
	Buckets int
	// PeerShuffle routes the scan's bucket blocks straight to the owning
	// peers (per the roster) instead of returning them in the result.
	PeerShuffle bool

	// TaskReduceBuild:
	Records []model.PositionRecord
}

// TaskResult reports one task execution. Err is the execution failure, if
// any; the payload fields mirror the task kinds.
type TaskResult struct {
	ID      uint64
	Attempt int
	Worker  string
	Err     string

	// Build kinds:
	Inventory []byte // inventory.Marshal of the partial build
	Stats     pipeline.Stats

	// TaskScan:
	Statics      map[uint32]model.VesselInfo
	BucketBlocks [][]model.PositionRecord
	Feed         feed.ReadStats
	SectionIndex int
	// Peer-shuffle scans ship their buckets directly to the owning peers
	// and report only the per-bucket record counts here (completion
	// accounting and metrics; the records themselves never transit the
	// coordinator).
	BucketRecords []int
}

// writeFrame encodes env as one length-prefixed gob frame and reports the
// bytes written (callers attribute shuffle-bearing frames to the
// coordinator-path shuffle metric).
func writeFrame(w io.Writer, env *envelope) (int, error) {
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 0})
	if err := gob.NewEncoder(&buf).Encode(env); err != nil {
		return 0, fmt.Errorf("cluster: encode frame: %w", err)
	}
	b := buf.Bytes()
	binary.BigEndian.PutUint32(b[:4], uint32(len(b)-4))
	if _, err := w.Write(b); err != nil {
		return 0, fmt.Errorf("cluster: write frame: %w", err)
	}
	return len(b), nil
}

// readFrame decodes one frame, rejecting lengths beyond maxBytes, and
// reports the frame size (header + body).
func readFrame(r io.Reader, maxBytes int) (*envelope, int, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, 0, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if maxBytes <= 0 {
		maxBytes = DefaultMaxFrameBytes
	}
	if int64(n) > int64(maxBytes) {
		return nil, 0, fmt.Errorf("cluster: frame of %d bytes exceeds cap %d", n, maxBytes)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, 0, fmt.Errorf("cluster: read frame body: %w", err)
	}
	var env envelope
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&env); err != nil {
		return nil, 0, fmt.Errorf("cluster: decode frame: %w", err)
	}
	return &env, int(n) + 4, nil
}
