package ais

import "math"

// StaticReport is a decoded type-5 static and voyage data message.
type StaticReport struct {
	MMSI        uint32
	IMO         uint32 // IMO ship identification number, 0 if unset
	CallSign    string // up to 7 characters
	Name        string // up to 20 characters
	ShipType    ShipType
	DimBow      int     // metres from GPS antenna to bow
	DimStern    int     // metres to stern (length = bow + stern)
	DimPort     int     // metres to port side
	DimStarb    int     // metres to starboard (beam = port + starboard)
	Draught     float64 // metres, NaN if unavailable
	Destination string  // up to 20 characters, as keyed by the crew
	ETAMonth    int     // 1-12, 0 if unavailable
	ETADay      int     // 1-31, 0 if unavailable
	ETAHour     int     // 0-23, 24 if unavailable
	ETAMinute   int     // 0-59, 60 if unavailable
}

// Length returns the vessel's overall length in metres.
func (s StaticReport) Length() int { return s.DimBow + s.DimStern }

// Beam returns the vessel's beam in metres.
func (s StaticReport) Beam() int { return s.DimPort + s.DimStarb }

const staticBits = 424

// EncodeStatic encodes a type-5 static and voyage message. Type-5 payloads
// are 424 bits and always split across two NMEA sentences; seqID tags the
// group.
func EncodeStatic(s StaticReport, seqID int) ([]string, error) {
	if !ValidMMSI(s.MMSI) {
		return nil, ErrInvalidFields
	}
	b := newBitBuf(staticBits)
	b.setUint(0, 6, TypeStatic)
	b.setUint(8, 30, uint64(s.MMSI))
	b.setUint(38, 2, 0) // AIS version
	b.setUint(40, 30, uint64(s.IMO))
	b.setText(70, 7, s.CallSign)
	b.setText(112, 20, s.Name)
	b.setUint(232, 8, uint64(s.ShipType))
	b.setUint(240, 9, clampUint(s.DimBow, 511))
	b.setUint(249, 9, clampUint(s.DimStern, 511))
	b.setUint(258, 6, clampUint(s.DimPort, 63))
	b.setUint(264, 6, clampUint(s.DimStarb, 63))
	b.setUint(270, 4, 1) // EPFD: GPS
	b.setUint(274, 4, uint64(clampInt(s.ETAMonth, 0, 12)))
	b.setUint(278, 5, uint64(clampInt(s.ETADay, 0, 31)))
	b.setUint(283, 5, uint64(clampInt(s.ETAHour, 0, 24)))
	b.setUint(288, 6, uint64(clampInt(s.ETAMinute, 0, 60)))
	draughtRaw := uint64(0)
	if !math.IsNaN(s.Draught) && s.Draught > 0 {
		v := math.Round(s.Draught * 10)
		if v > 255 {
			v = 255
		}
		draughtRaw = uint64(v)
	}
	b.setUint(294, 8, draughtRaw)
	b.setText(302, 20, s.Destination)
	return EncodeSentences(b, "A", seqID), nil
}

// decodeStatic decodes a type-5 payload.
func decodeStatic(b *bitBuf) (StaticReport, error) {
	if b.Len() < 420 {
		return StaticReport{}, ErrShortMessage
	}
	if b.uint(0, 6) != TypeStatic {
		return StaticReport{}, ErrWrongType
	}
	s := StaticReport{
		MMSI:        uint32(b.uint(8, 30)),
		IMO:         uint32(b.uint(40, 30)),
		CallSign:    b.text(70, 7),
		Name:        b.text(112, 20),
		ShipType:    ShipType(b.uint(232, 8)),
		DimBow:      int(b.uint(240, 9)),
		DimStern:    int(b.uint(249, 9)),
		DimPort:     int(b.uint(258, 6)),
		DimStarb:    int(b.uint(264, 6)),
		ETAMonth:    int(b.uint(274, 4)),
		ETADay:      int(b.uint(278, 5)),
		ETAHour:     int(b.uint(283, 5)),
		ETAMinute:   int(b.uint(288, 6)),
		Destination: b.text(302, 20),
	}
	draughtRaw := b.uint(294, 8)
	s.Draught = math.NaN()
	if draughtRaw > 0 {
		s.Draught = float64(draughtRaw) / 10
	}
	return s, nil
}

func clampUint(v, hi int) uint64 {
	if v < 0 {
		return 0
	}
	if v > hi {
		return uint64(hi)
	}
	return uint64(v)
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
