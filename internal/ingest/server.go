package ingest

import (
	"errors"
	"log"
	"net"
	"sync"
	"time"
)

// ServerOptions configures the TCP feed listener.
type ServerOptions struct {
	// IdleTimeout is the per-connection read deadline, reset on every
	// read: a feed silent for longer is dropped (default 5m). Zero or
	// negative keeps the default; use NoIdleTimeout to disable.
	IdleTimeout time.Duration
	// Logf receives connection lifecycle messages (default log.Printf).
	Logf func(format string, args ...any)
}

// NoIdleTimeout disables the per-connection read deadline.
const NoIdleTimeout = time.Duration(-1)

// Server accepts timestamped-NMEA feed connections on a TCP listener and
// pumps every decoded item into the engine. Each connection gets its own
// goroutine, feed counters, and rolling read deadline; backpressure from
// a saturated engine queue blocks the connection's reads, pushing back on
// the sender through TCP flow control.
type Server struct {
	eng  *Engine
	opt  ServerOptions
	ln   net.Listener
	quit chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

// NewServer starts accepting feeds on ln; it returns immediately.
func NewServer(eng *Engine, ln net.Listener, opt ServerOptions) *Server {
	if opt.IdleTimeout == 0 {
		opt.IdleTimeout = 5 * time.Minute
	}
	if opt.Logf == nil {
		opt.Logf = log.Printf
	}
	s := &Server{eng: eng, opt: opt, ln: ln, quit: make(chan struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the listener address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Close stops accepting, closes live connections, and waits for the
// per-connection goroutines to drain.
func (s *Server) Close() error {
	var err error
	s.once.Do(func() {
		close(s.quit)
		err = s.ln.Close()
	})
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.quit:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			s.opt.Logf("ingest: accept: %v", err)
			continue
		}
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()

	// Closing the listener does not unblock established connections;
	// watch quit and force-close so shutdown is prompt.
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-s.quit:
			conn.Close()
		case <-done:
		}
	}()

	fs := s.eng.RegisterFeed(conn.RemoteAddr().String())
	defer fs.Closed.Store(true)
	err := PumpFeed(s.eng, &deadlineConn{Conn: conn, idle: s.opt.IdleTimeout}, fs)
	if err != nil {
		select {
		case <-s.quit: // shutdown-induced close: not a feed error
		default:
			msg := err.Error()
			fs.Err.Store(&msg)
			s.opt.Logf("ingest: feed %s: %v", fs.Remote, err)
		}
	}
}

// deadlineConn resets the read deadline before every Read so only
// end-to-end silence — not a long transfer — trips the idle timeout.
type deadlineConn struct {
	net.Conn
	idle time.Duration
}

func (c *deadlineConn) Read(p []byte) (int, error) {
	if c.idle > 0 {
		if err := c.Conn.SetReadDeadline(time.Now().Add(c.idle)); err != nil {
			return 0, err
		}
	}
	return c.Conn.Read(p)
}
