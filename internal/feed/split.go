package feed

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"strconv"
)

// Section is a byte range of a timestamped-NMEA archive, the unit of
// parallel and distributed reads. Sections produced by Split are contiguous
// and cover the whole file; each decodes a disjoint subset of the archive's
// records, and the union over all sections equals a single sequential pass.
type Section struct {
	Path  string // archive path (must be readable where the section is opened)
	Index int    // position of this section in the split, 0-based
	Start int64  // first byte of the range
	End   int64  // one past the last byte of the range
}

// Split divides the archive at path into n byte-range sections of roughly
// equal size. Ranges are byte-oriented: a section boundary generally falls
// mid-line, so readers resync to the next record boundary — a section owns
// every record whose first byte lies in (Start, End], plus the record
// starting exactly at byte 0 for the first section. Multi-sentence messages
// count as one record owned by the section of their first sentence line.
func Split(path string, n int) ([]Section, error) {
	if n < 1 {
		n = 1
	}
	st, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("feed: split %s: %w", path, err)
	}
	size := st.Size()
	if int64(n) > size && size > 0 {
		n = int(size)
	}
	if size == 0 {
		n = 1
	}
	out := make([]Section, n)
	for i := 0; i < n; i++ {
		out[i] = Section{
			Path:  path,
			Index: i,
			Start: size * int64(i) / int64(n),
			End:   size * int64(i+1) / int64(n),
		}
	}
	return out, nil
}

// OpenSection opens one section of an archive for decoding. The returned
// Reader yields exactly the records owned by the section (see Split);
// closing the returned closer releases the underlying file.
func OpenSection(sec Section) (*Reader, io.Closer, error) {
	f, err := os.Open(sec.Path)
	if err != nil {
		return nil, nil, fmt.Errorf("feed: open section %d of %s: %w", sec.Index, sec.Path, err)
	}
	r, err := NewSectionReader(f, sec.Start, sec.End)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return r, f, nil
}

// NewSectionReader returns a Reader decoding the records owned by the byte
// range [start, end) of the archive behind src (Hadoop-style text-split
// semantics):
//
//   - if start > 0 the stream seeks to start and discards everything up to
//     and including the first newline — that partial (or boundary-aligned)
//     line belongs to the previous section, which reads past its own end to
//     finish it;
//   - continuation sentences of a multi-sentence NMEA group (fragment
//     number > 1) immediately after the resync point are discarded too: the
//     group is owned by the section containing its first sentence;
//   - reading continues through end until the current line — and any
//     continuation lines completing the group it opened — is finished.
func NewSectionReader(src io.ReadSeeker, start, end int64) (*Reader, error) {
	if start < 0 || end < start {
		return nil, fmt.Errorf("feed: bad section range [%d,%d)", start, end)
	}
	if _, err := src.Seek(start, io.SeekStart); err != nil {
		return nil, fmt.Errorf("feed: seek to %d: %w", start, err)
	}
	b := &boundedLineReader{
		br:  bufio.NewReaderSize(src, 1<<16),
		pos: start,
		end: end,
	}
	if start > 0 {
		if err := b.resync(); err != nil && err != io.EOF {
			return nil, err
		}
	}
	return NewReader(b), nil
}

// boundedLineReader is an io.Reader surfacing whole lines of the underlying
// stream while the line start lies within the section, per the ownership
// rule of NewSectionReader. It hands the Reader complete lines only, so the
// downstream scanner never sees a record split at the section boundary.
type boundedLineReader struct {
	br   *bufio.Reader
	pos  int64 // absolute offset of the next unread byte
	end  int64
	cur  []byte // remainder of the current line being surfaced
	open bool   // the last surfaced line opened a multi-sentence group
	done bool
}

// resync discards the partial line at the section start, plus any
// continuation sentences whose group started in the previous section.
func (b *boundedLineReader) resync() error {
	if err := b.skipLine(); err != nil {
		return err
	}
	for {
		line, err := b.br.Peek(fragPeek)
		if len(line) == 0 {
			return err
		}
		if fragNum(firstLine(line)) <= 1 {
			return nil
		}
		if err := b.skipLine(); err != nil {
			return err
		}
	}
}

// fragPeek is the lookahead needed to parse a line's fragment number: the
// Unix timestamp, the tab, and the first three NMEA fields fit well inside
// it.
const fragPeek = 64

// skipLine consumes one line (through '\n' or EOF), tracking pos.
func (b *boundedLineReader) skipLine() error {
	for {
		chunk, err := b.br.ReadSlice('\n')
		b.pos += int64(len(chunk))
		if err == bufio.ErrBufferFull {
			continue
		}
		return err
	}
}

// firstLine truncates buf at the first newline.
func firstLine(buf []byte) []byte {
	if i := bytes.IndexByte(buf, '\n'); i >= 0 {
		return buf[:i]
	}
	return buf
}

// fragNum extracts the fragment number of a timestamped NMEA line
// ("ts\t!AIVDM,total,num,..."): 1 for standalone or first sentences, and
// for anything unparseable (malformed lines never extend a section).
func fragNum(line []byte) int {
	tab := bytes.IndexByte(line, '\t')
	if tab < 0 {
		return 1
	}
	fields := bytes.SplitN(line[tab+1:], []byte{','}, 4)
	if len(fields) < 3 {
		return 1
	}
	n, err := strconv.Atoi(string(fields[2]))
	if err != nil || n < 1 {
		return 1
	}
	return n
}

// Read surfaces the next chunk of owned lines.
func (b *boundedLineReader) Read(p []byte) (int, error) {
	for len(b.cur) == 0 {
		if b.done {
			return 0, io.EOF
		}
		if err := b.nextLine(); err != nil {
			b.done = true
			if len(b.cur) == 0 {
				return 0, io.EOF
			}
			break
		}
	}
	n := copy(p, b.cur)
	b.cur = b.cur[n:]
	return n, nil
}

// nextLine loads the next owned line into cur, or flags completion. The
// reader is always at a line start here. A line starting at exactly pos ==
// end is still owned (the next section's resync discards it), mirroring the
// discard-through-first-newline rule on the other side of the boundary.
func (b *boundedLineReader) nextLine() error {
	if b.pos > b.end || (b.pos == b.end && b.end == 0) {
		// Past the range: only continuation lines completing the group the
		// section opened are still owned.
		if !b.open {
			return io.EOF
		}
		line, err := b.br.Peek(fragPeek)
		if len(line) == 0 || fragNum(firstLine(line)) <= 1 {
			b.open = false
			if err != nil && err != io.EOF {
				return err
			}
			return io.EOF
		}
	}
	line, err := b.readLine()
	if len(line) == 0 {
		if err == nil || err == io.EOF {
			return io.EOF
		}
		return err
	}
	b.trackGroup(line)
	b.cur = line
	if err != nil && err != io.EOF {
		return err
	}
	return nil
}

// readLine reads one full line (including '\n' when present), copying it
// out of the bufio window.
func (b *boundedLineReader) readLine() ([]byte, error) {
	var out []byte
	for {
		chunk, err := b.br.ReadSlice('\n')
		b.pos += int64(len(chunk))
		out = append(out, chunk...)
		if err == bufio.ErrBufferFull {
			continue
		}
		return out, err
	}
}

// trackGroup updates the open-group flag: a line with total > num leaves a
// group open; the line carrying the final fragment closes it.
func (b *boundedLineReader) trackGroup(line []byte) {
	l := firstLine(line)
	tab := bytes.IndexByte(l, '\t')
	if tab < 0 {
		return
	}
	fields := bytes.SplitN(l[tab+1:], []byte{','}, 4)
	if len(fields) < 3 {
		b.open = false
		return
	}
	total, err1 := strconv.Atoi(string(fields[1]))
	num, err2 := strconv.Atoi(string(fields[2]))
	if err1 != nil || err2 != nil {
		b.open = false
		return
	}
	b.open = num < total
}
