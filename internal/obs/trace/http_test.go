package trace

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestMiddlewareContinuity drives a two-hop chain — client span →
// frontend middleware → outbound request → backend middleware — and
// asserts every hop records spans under the one trace ID, with parent
// links crossing both process boundaries.
func TestMiddlewareContinuity(t *testing.T) {
	backendTr := New(Options{Service: "backend"})
	backend := httptest.NewServer(backendTr.Middleware("inner", http.HandlerFunc(
		func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(http.StatusOK)
			_, _ = io.WriteString(w, "pong")
		})))
	defer backend.Close()

	frontendTr := New(Options{Service: "frontend"})
	frontend := httptest.NewServer(frontendTr.Middleware("outer", http.HandlerFunc(
		func(w http.ResponseWriter, r *http.Request) {
			// Proxy hop: child span of the server span, injected outbound.
			_, span := frontendTr.StartFromContext(r.Context(), "proxy.fetch")
			req, _ := http.NewRequest("GET", backend.URL, nil)
			Inject(req, span)
			resp, err := http.DefaultClient.Do(req)
			span.SetError(err)
			span.Finish()
			if err != nil {
				w.WriteHeader(http.StatusBadGateway)
				return
			}
			defer resp.Body.Close()
			_, _ = io.Copy(w, resp.Body)
		})))
	defer frontend.Close()

	clientTr := New(Options{Service: "client"})
	clientSpan := clientTr.StartRoot("client.request")
	req, _ := http.NewRequest("GET", frontend.URL, nil)
	Inject(req, clientSpan)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	clientSpan.Finish()
	if string(body) != "pong" {
		t.Fatalf("body %q, want pong", body)
	}

	traceID := clientSpan.Trace
	if got := resp.Header.Get(ResponseHeader); got != traceID.String() {
		t.Fatalf("response header trace id %q, want %q", got, traceID.String())
	}

	// Frontend: server span parented to client span, proxy child under it.
	fSpans := frontendTr.Spans(traceID)
	if len(fSpans) != 2 {
		t.Fatalf("frontend retained %d spans of the trace, want 2", len(fSpans))
	}
	var server, proxy *Span
	for _, s := range fSpans {
		switch s.Name {
		case "http.outer":
			server = s
		case "proxy.fetch":
			proxy = s
		}
	}
	if server == nil || proxy == nil {
		t.Fatalf("frontend spans missing: %+v", fSpans)
	}
	if server.Parent != clientSpan.ID {
		t.Fatal("frontend server span not parented to the client span")
	}
	if proxy.Parent != server.ID {
		t.Fatal("proxy span not parented to the server span")
	}

	// Backend: one server span parented to the proxy span, same trace.
	bSpans := backendTr.Spans(traceID)
	if len(bSpans) != 1 {
		t.Fatalf("backend retained %d spans of the trace, want 1", len(bSpans))
	}
	if bSpans[0].Name != "http.inner" || bSpans[0].Parent != proxy.ID {
		t.Fatalf("backend span not joined to the proxy span: %+v", bSpans[0])
	}
}

// TestMiddlewareMalformedHeaders sends a battery of malformed and
// truncated traceparent headers: every request must still succeed (200)
// and record a fresh root span rather than erroring or joining a bogus
// trace.
func TestMiddlewareMalformedHeaders(t *testing.T) {
	tr := New(Options{Service: "test"})
	srv := httptest.NewServer(tr.Middleware("q", http.HandlerFunc(
		func(w http.ResponseWriter, r *http.Request) { _, _ = io.WriteString(w, "ok") })))
	defer srv.Close()

	cases := []string{
		"",
		"garbage",
		"00-zz-zz-zz",
		"00-" + strings.Repeat("0", 32) + "-" + strings.Repeat("0", 16) + "-01",
		strings.Repeat("a", 54),
		strings.Repeat("-", 55),
		"00-" + strings.Repeat("1", 31) + "-" + strings.Repeat("2", 17) + "-01",
		"01-" + strings.Repeat("1", 32) + "-" + strings.Repeat("2", 16) + "-01",
	}
	before := tr.SpanCount()
	for _, h := range cases {
		req, _ := http.NewRequest("GET", srv.URL, nil)
		if h != "" {
			req.Header.Set(Header, h)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("header %q: %v", h, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("header %q: status %d", h, resp.StatusCode)
		}
		if resp.Header.Get(ResponseHeader) == "" {
			t.Fatalf("header %q: no trace id on response", h)
		}
	}
	if got := tr.SpanCount() - before; got != int64(len(cases)) {
		t.Fatalf("recorded %d spans for %d requests", got, len(cases))
	}
	// All spans are fresh roots (no parent) since no header was valid.
	for _, s := range tr.all() {
		if !s.Parent.IsZero() {
			t.Fatalf("malformed header produced a parented span: %+v", s)
		}
	}
}

// TestTraceHTTPHandler exercises the /v1/traces query surface over
// httptest: listing, single-trace tree, malformed id, unknown id.
func TestTraceHTTPHandler(t *testing.T) {
	tr := New(Options{Service: "test"})
	root := tr.StartRoot("job")
	tr.StartChild(root, "step").Finish()
	root.Finish()

	mux := http.NewServeMux()
	tr.Mount(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	get := func(path string) (int, []byte) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, b
	}

	code, body := get("/v1/traces")
	if code != http.StatusOK {
		t.Fatalf("list status %d: %s", code, body)
	}
	var list struct {
		Service string         `json:"service"`
		Traces  []TraceSummary `json:"traces"`
	}
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if list.Service != "test" || len(list.Traces) != 1 || list.Traces[0].Spans != 2 {
		t.Fatalf("bad listing: %s", body)
	}

	code, body = get("/v1/traces/" + root.Trace.String())
	if code != http.StatusOK {
		t.Fatalf("tree status %d: %s", code, body)
	}
	var tree struct {
		Spans []*SpanJSON `json:"spans"`
	}
	if err := json.Unmarshal(body, &tree); err != nil {
		t.Fatal(err)
	}
	if len(tree.Spans) != 1 || tree.Spans[0].Name != "job" || len(tree.Spans[0].Children) != 1 {
		t.Fatalf("bad tree: %s", body)
	}

	if code, _ = get("/v1/traces/nothex"); code != http.StatusBadRequest {
		t.Fatalf("malformed id status %d, want 400", code)
	}
	if code, _ = get("/v1/traces/" + NewTraceID().String()); code != http.StatusNotFound {
		t.Fatalf("unknown id status %d, want 404", code)
	}
}
