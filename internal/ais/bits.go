package ais

// bitBuf is a big-endian bit vector backed by bytes, the wire representation
// of AIS message payloads before 6-bit armoring. Bit 0 is the most
// significant bit of byte 0, as in ITU-R M.1371 field tables.
type bitBuf struct {
	bits []byte
	n    int // length in bits
}

// newBitBuf allocates a buffer of n bits, all zero.
func newBitBuf(n int) *bitBuf {
	return &bitBuf{bits: make([]byte, (n+7)/8), n: n}
}

// Len returns the length in bits.
func (b *bitBuf) Len() int { return b.n }

// setUint writes the width low bits of v at bit offset start, MSB first.
func (b *bitBuf) setUint(start, width int, v uint64) {
	for i := 0; i < width; i++ {
		bit := start + i
		if v>>(width-1-i)&1 == 1 {
			b.bits[bit/8] |= 1 << (7 - bit%8)
		} else {
			b.bits[bit/8] &^= 1 << (7 - bit%8)
		}
	}
}

// uint reads width bits at offset start as an unsigned integer. Reads past
// the end return the available bits zero-padded (per the AIS convention that
// truncated trailing fields read as zero).
func (b *bitBuf) uint(start, width int) uint64 {
	var v uint64
	for i := 0; i < width; i++ {
		v <<= 1
		bit := start + i
		if bit < b.n && b.bits[bit/8]>>(7-bit%8)&1 == 1 {
			v |= 1
		}
	}
	return v
}

// setInt writes a two's-complement signed value of the given width.
func (b *bitBuf) setInt(start, width int, v int64) {
	b.setUint(start, width, uint64(v)&(1<<width-1))
}

// int reads width bits as a two's-complement signed integer.
func (b *bitBuf) int(start, width int) int64 {
	v := b.uint(start, width)
	if v&(1<<(width-1)) != 0 {
		return int64(v) - (1 << width)
	}
	return int64(v)
}

// sixBitChars is the AIS 6-bit text alphabet indexed by field value:
// values 0-31 map to '@' + v, values 32-63 map to ' ' + (v - 32).
func sixBitChar(v byte) byte {
	if v < 32 {
		return '@' + v
	}
	return v // 32..63 are ASCII space..'?'
}

// sixBitValue inverts sixBitChar; it reports ok=false for characters outside
// the AIS text alphabet. Lowercase letters are folded to uppercase.
func sixBitValue(c byte) (byte, bool) {
	if c >= 'a' && c <= 'z' {
		c -= 32
	}
	switch {
	case c >= '@' && c <= '_':
		return c - '@', true
	case c >= ' ' && c <= '?':
		return c, true
	default:
		return 0, false
	}
}

// setText writes a fixed-length 6-bit text field, padding with '@'.
// Characters outside the alphabet are replaced by '@'.
func (b *bitBuf) setText(start, chars int, s string) {
	for i := 0; i < chars; i++ {
		var v byte // '@' padding
		if i < len(s) {
			if sv, ok := sixBitValue(s[i]); ok {
				v = sv
			}
		}
		b.setUint(start+6*i, 6, uint64(v))
	}
}

// text reads a fixed-length 6-bit text field, trimming trailing '@' padding
// and spaces.
func (b *bitBuf) text(start, chars int) string {
	out := make([]byte, 0, chars)
	for i := 0; i < chars; i++ {
		v := byte(b.uint(start+6*i, 6))
		out = append(out, sixBitChar(v))
	}
	// Trim at first '@' and trailing spaces.
	end := len(out)
	for i, c := range out {
		if c == '@' {
			end = i
			break
		}
	}
	for end > 0 && out[end-1] == ' ' {
		end--
	}
	return string(out[:end])
}

// armor encodes the bit buffer into the printable 6-bit payload alphabet,
// returning the payload string and the number of fill bits appended to pad
// to a 6-bit boundary.
func (b *bitBuf) armor() (payload string, fillBits int) {
	nChars := (b.n + 5) / 6
	fillBits = nChars*6 - b.n
	out := make([]byte, nChars)
	for i := 0; i < nChars; i++ {
		v := byte(b.uint(i*6, 6))
		if v < 40 {
			out[i] = v + 48
		} else {
			out[i] = v + 56
		}
	}
	return string(out), fillBits
}

// unarmor decodes a printable payload (with fill bits) back into a bit
// buffer.
func unarmor(payload string, fillBits int) (*bitBuf, error) {
	if fillBits < 0 || fillBits > 5 {
		return nil, ErrBadPayload
	}
	n := len(payload)*6 - fillBits
	if n < 0 {
		return nil, ErrBadPayload
	}
	b := newBitBuf(n)
	for i := 0; i < len(payload); i++ {
		c := payload[i]
		var v byte
		switch {
		case c >= 48 && c <= 87: // '0'..'W'
			v = c - 48
		case c >= 96 && c <= 119: // '`'..'w'
			v = c - 56
		default:
			return nil, ErrBadPayload
		}
		// The final character may carry fewer than 6 significant bits.
		width := 6
		if rem := n - i*6; rem < 6 {
			width = rem
			v >>= uint(6 - rem)
		}
		if width > 0 {
			b.setUint(i*6, width, uint64(v))
		}
	}
	return b, nil
}
