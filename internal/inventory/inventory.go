package inventory

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"github.com/patternsoflife/pol/internal/geo"
	"github.com/patternsoflife/pol/internal/hexgrid"
	"github.com/patternsoflife/pol/internal/model"
)

// BuildInfo records the provenance of an inventory.
type BuildInfo struct {
	Resolution  int    // hexgrid resolution of all cells
	RawRecords  int64  // records entering the pipeline
	UsedRecords int64  // trip-annotated records aggregated
	BuiltUnix   int64  // build timestamp
	Description string // free-form dataset description
}

// Inventory is the in-memory global inventory: group identifier →
// statistical summary, hash-sharded into ShardCount partitions.
//
// Concurrency contract: writes (Put, Observe, MergeFrom, SetInfo) are
// single-writer and must not run concurrently with readers on the same
// instance. The live-serving pattern is copy-on-write publishing: one owner
// goroutine mutates a private master inventory and publishes Snapshot()
// results through an atomic.Pointer[Inventory]. A snapshot re-copies only
// the shards dirtied since the previous snapshot and shares every clean
// shard with it, so publish cost is proportional to the micro-batch delta,
// not the inventory size. Snapshots are frozen: their write methods panic,
// and any number of goroutines may read one concurrently — the lazily
// built per-shard OD index is the only internal mutation on the read path
// and is mutex-guarded.
type Inventory struct {
	info   BuildInfo
	shards [ShardCount]*shard // nil until a shard receives its first group
	count  int                // total groups across all shards

	// Writer-side copy-on-write state (unused on frozen snapshots):
	// dirty marks shards mutated since the last Snapshot; pub holds the
	// immutable copies the last Snapshot published, reused verbatim for
	// clean shards by the next one.
	dirty  [ShardCount]bool
	pub    []*shard
	frozen bool
}

type odKey struct {
	origin, dest model.PortID
	vtype        model.VesselType
}

// New returns an empty inventory with the given build info.
func New(info BuildInfo) *Inventory {
	return &Inventory{info: info}
}

// Info returns the build provenance.
func (inv *Inventory) Info() BuildInfo { return inv.info }

// SetInfo replaces the build provenance (used by builders).
func (inv *Inventory) SetInfo(info BuildInfo) {
	inv.mustWrite("SetInfo")
	inv.info = info
}

// Len returns the number of groups across all grouping sets.
func (inv *Inventory) Len() int { return inv.count }

// mustWrite enforces the snapshot immutability contract.
func (inv *Inventory) mustWrite(op string) {
	if inv.frozen {
		panic("inventory: " + op + " on a published snapshot (snapshots are immutable; mutate the master and re-publish)")
	}
}

// writeShard returns the shard for key, creating it if needed and marking
// it dirty for the next Snapshot.
func (inv *Inventory) writeShard(key GroupKey) (*shard, int) {
	i := shardFor(key)
	sh := inv.shards[i]
	if sh == nil {
		sh = newShard()
		inv.shards[i] = sh
	}
	inv.dirty[i] = true
	return sh, i
}

// Put inserts or merges a summary under the key. Writer-side only — see
// the type's concurrency contract.
func (inv *Inventory) Put(key GroupKey, s *CellSummary) {
	inv.mustWrite("Put")
	sh, _ := inv.writeShard(key)
	if cur, ok := sh.groups[key]; ok {
		cur.Merge(s)
		return
	}
	sh.groups[key] = s
	inv.count++
	// Only OD-grouping keys appear in the OD sub-index; the single-writer
	// master invalidates without any lock round-trip.
	if key.Set == GSCellODType {
		sh.od = nil
	}
}

// Observe folds one observation into the summary of the key, creating the
// group on first sight — the accumulation primitive of the live ingestion
// path (one call per grouping set per accepted trip record). Writer-side
// only.
func (inv *Inventory) Observe(key GroupKey, o Observation) {
	inv.mustWrite("Observe")
	sh, _ := inv.writeShard(key)
	s, ok := sh.groups[key]
	if !ok {
		s = NewCellSummary()
		sh.groups[key] = s
		inv.count++
		if key.Set == GSCellODType {
			sh.od = nil
		}
	}
	s.Add(o)
}

// parallelMergeThreshold is the source-inventory size from which MergeFrom
// fans the per-shard merges out across goroutines. Micro-batch period
// inventories stay below it and merge serially; monthly-build-sized merges
// amortize the goroutine overhead many times over.
const parallelMergeThreshold = 4096

// MergeFrom folds another inventory of the same resolution into this one —
// the incremental-update path: periodic (micro-batch or monthly) builds
// merge into a running inventory without re-scanning raw data, because
// every Table-3 statistic is a mergeable sketch. Both inventories shard by
// the same hash, so shard i of other merges only into shard i of the
// receiver; large merges run shard-by-shard in parallel. It returns an
// error on resolution mismatch.
//
// MergeFrom is writer-side: it must not run concurrently with any other
// method on the receiver, and other must not be mutated during the merge
// (reading other, including a frozen snapshot, is fine). Summaries from
// other are deep-copied, so other may be discarded or mutated afterwards.
func (inv *Inventory) MergeFrom(other *Inventory) error {
	inv.mustWrite("MergeFrom")
	if other.info.Resolution != inv.info.Resolution {
		return fmt.Errorf("inventory: merge resolution %d into %d",
			other.info.Resolution, inv.info.Resolution)
	}
	var added [ShardCount]int
	mergeShard := func(i int) {
		os := other.shards[i]
		if os == nil || len(os.groups) == 0 {
			return
		}
		sh := inv.shards[i]
		if sh == nil {
			sh = &shard{groups: make(map[GroupKey]*CellSummary, len(os.groups))}
			inv.shards[i] = sh
		}
		inv.dirty[i] = true
		for k, s := range os.groups {
			if cur, ok := sh.groups[k]; ok {
				cur.Merge(s)
				continue
			}
			c := NewCellSummary()
			c.Merge(s)
			sh.groups[k] = c
			added[i]++
			if k.Set == GSCellODType {
				sh.od = nil
			}
		}
	}
	if workers := runtime.GOMAXPROCS(0); workers > 1 && other.count >= parallelMergeThreshold {
		if workers > ShardCount {
			workers = ShardCount
		}
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < ShardCount; i += workers {
					mergeShard(i)
				}
			}(w)
		}
		wg.Wait()
	} else {
		for i := 0; i < ShardCount; i++ {
			mergeShard(i)
		}
	}
	for _, n := range added {
		inv.count += n
	}
	inv.info.RawRecords += other.info.RawRecords
	inv.info.UsedRecords += other.info.UsedRecords
	return nil
}

// Snapshot publishes the current state as a frozen inventory in O(delta):
// shards dirtied since the previous Snapshot are deep-copied; clean shards
// are shared, pointer-for-pointer, with the previously published snapshot.
// The result is immutable (its write methods panic) and safe for any
// number of concurrent readers; the master may keep mutating immediately —
// it never shares memory with its snapshots.
func (inv *Inventory) Snapshot() *Inventory {
	if inv.frozen {
		return inv
	}
	if inv.pub == nil {
		inv.pub = make([]*shard, ShardCount)
	}
	snap := &Inventory{info: inv.info, count: inv.count, frozen: true}
	for i := range inv.shards {
		sh := inv.shards[i]
		if sh == nil {
			continue
		}
		if inv.dirty[i] || inv.pub[i] == nil {
			inv.pub[i] = sh.deepCopy()
			inv.dirty[i] = false
		}
		snap.shards[i] = inv.pub[i]
	}
	return snap
}

// Clone returns a deep, mutable copy of the inventory: fresh summaries
// (every sketch duplicated) and identical build info. The copy shares no
// state with the receiver. Live serving should prefer Snapshot, which
// re-copies only dirty shards; Clone always pays O(inventory).
func (inv *Inventory) Clone() *Inventory {
	c := New(BuildInfo{Resolution: inv.info.Resolution})
	_ = c.MergeFrom(inv) // same resolution by construction
	c.info = inv.info
	return c
}

// Get returns the summary for an exact group identifier.
func (inv *Inventory) Get(key GroupKey) (*CellSummary, bool) {
	sh := inv.shards[shardFor(key)]
	if sh == nil {
		return nil, false
	}
	s, ok := sh.groups[key]
	return s, ok
}

// Cell returns the all-traffic summary of a cell (grouping set GSCell).
func (inv *Inventory) Cell(cell hexgrid.Cell) (*CellSummary, bool) {
	return inv.Get(GroupKey{Set: GSCell, Cell: cell})
}

// At returns the all-traffic summary of the cell containing the given
// location at the inventory's resolution — the paper's "query for a
// specific location".
func (inv *Inventory) At(p geo.LatLng) (*CellSummary, bool) {
	return inv.Cell(hexgrid.LatLngToCell(p, inv.info.Resolution))
}

// CountGroups returns the number of groups in one grouping set.
func (inv *Inventory) CountGroups(set GroupSet) int {
	n := 0
	for _, sh := range inv.shards {
		if sh == nil {
			continue
		}
		for k := range sh.groups {
			if k.Set == set {
				n++
			}
		}
	}
	return n
}

// Cells returns all cells of one grouping set, sorted for determinism.
func (inv *Inventory) Cells(set GroupSet) []hexgrid.Cell {
	seen := make(map[hexgrid.Cell]struct{})
	for _, sh := range inv.shards {
		if sh == nil {
			continue
		}
		for k := range sh.groups {
			if k.Set == set {
				seen[k.Cell] = struct{}{}
			}
		}
	}
	out := make([]hexgrid.Cell, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Each calls f for every (key, summary) pair, in unspecified order.
func (inv *Inventory) Each(f func(GroupKey, *CellSummary) bool) {
	for _, sh := range inv.shards {
		if sh == nil {
			continue
		}
		for k, s := range sh.groups {
			if !f(k, s) {
				return
			}
		}
	}
}

// MostFrequentDestination returns the top destination of a cell's
// all-traffic summary (Figure 6's query).
func (inv *Inventory) MostFrequentDestination(cell hexgrid.Cell) (model.PortID, uint64, bool) {
	s, ok := inv.Cell(cell)
	if !ok {
		return model.NoPort, 0, false
	}
	port, count := s.TopDestination()
	return port, count, port != model.NoPort
}

// ODCells returns every cell that has traffic for the (origin, destination,
// vessel-type) key — the paper's route-forecasting retrieval ("the full set
// of possible transition locations for the selected key"). Each shard's OD
// sub-index builds lazily on first use and, because clean shards are shared
// between snapshots, is reused across publishes instead of being rebuilt
// from the whole inventory. The result is sorted for determinism.
func (inv *Inventory) ODCells(origin, dest model.PortID, vt model.VesselType) []hexgrid.Cell {
	k := odKey{origin: origin, dest: dest, vtype: vt}
	var out []hexgrid.Cell
	for _, sh := range inv.shards {
		if sh == nil {
			continue
		}
		if cells := sh.odCells(k); len(cells) > 0 {
			out = append(out, cells...)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ODSummary returns the summary for a cell under the OD grouping set.
func (inv *Inventory) ODSummary(cell hexgrid.Cell, origin, dest model.PortID, vt model.VesselType) (*CellSummary, bool) {
	return inv.Get(GroupKey{Set: GSCellODType, Cell: cell, VType: vt, Origin: origin, Dest: dest})
}

// TypeSummary returns the summary for a cell under the (cell, vessel-type)
// grouping set.
func (inv *Inventory) TypeSummary(cell hexgrid.Cell, vt model.VesselType) (*CellSummary, bool) {
	return inv.Get(GroupKey{Set: GSCellType, Cell: cell, VType: vt})
}

// Compression returns the paper's Table-4 compression metric for a grouping
// set: the fraction of raw records saved by querying groups instead of
// scanning records, 1 − groups/records.
func (inv *Inventory) Compression(set GroupSet) float64 {
	if inv.info.RawRecords == 0 {
		return 0
	}
	return 1 - float64(inv.CountGroups(set))/float64(inv.info.RawRecords)
}

// Utilization returns the paper's Table-4 H3-utilization metric: the
// fraction of all grid cells at the inventory resolution that carry
// traffic.
func (inv *Inventory) Utilization() float64 {
	total := hexgrid.NumCells(inv.info.Resolution)
	if total == 0 {
		return 0
	}
	return float64(len(inv.Cells(GSCell))) / float64(total)
}

// CoverageUtilization returns utilization within a coverage envelope: the
// fraction of cells inside the bounding box that carry traffic. On a
// reduced-scale synthetic dataset the paper's global utilization is not
// reproducible in absolute value; the envelope version preserves the
// res-6 > res-7 shape.
func (inv *Inventory) CoverageUtilization(box geo.BBox) float64 {
	cells := inv.Cells(GSCell)
	if len(cells) == 0 {
		return 0
	}
	inside := 0
	for _, c := range cells {
		if box.Contains(c.LatLng()) {
			inside++
		}
	}
	total := len(hexgrid.CoverBBox(box, inv.info.Resolution))
	if total == 0 {
		return 0
	}
	return float64(inside) / float64(total)
}

// Validate performs internal consistency checks (used by tests and the
// file loader): every key's set is known, cells match the resolution,
// summaries are non-nil, keys live in the shard their hash selects, and
// the cached group count matches the shard contents.
func (inv *Inventory) Validate() error {
	total := 0
	for i, sh := range inv.shards {
		if sh == nil {
			continue
		}
		total += len(sh.groups)
		for k, s := range sh.groups {
			if s == nil {
				return fmt.Errorf("inventory: nil summary for %v", k)
			}
			if shardFor(k) != i {
				return fmt.Errorf("inventory: key %v in shard %d, want %d", k, i, shardFor(k))
			}
			switch k.Set {
			case GSCell, GSCellType, GSCellODType:
			default:
				return fmt.Errorf("inventory: unknown grouping set %d", k.Set)
			}
			if !k.Cell.Valid() {
				return fmt.Errorf("inventory: invalid cell in key %v", k)
			}
			if k.Cell.Resolution() != inv.info.Resolution {
				return fmt.Errorf("inventory: key %v at resolution %d, want %d",
					k, k.Cell.Resolution(), inv.info.Resolution)
			}
		}
	}
	if total != inv.count {
		return fmt.Errorf("inventory: cached count %d, shards hold %d", inv.count, total)
	}
	return nil
}
