package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// exactQuantile returns the true quantile of xs by sorting.
func exactQuantile(xs []float64, q float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 0 {
		return math.NaN()
	}
	idx := q * float64(len(s)-1)
	lo := int(idx)
	if lo >= len(s)-1 {
		return s[len(s)-1]
	}
	f := idx - float64(lo)
	return s[lo]*(1-f) + s[lo+1]*f
}

func TestTDigestEmpty(t *testing.T) {
	d := NewTDigest(DefaultCompression)
	if !math.IsNaN(d.Quantile(0.5)) {
		t.Error("empty digest quantile must be NaN")
	}
	if !math.IsNaN(d.CDF(1)) {
		t.Error("empty digest CDF must be NaN")
	}
	if d.Count() != 0 {
		t.Error("empty digest count must be 0")
	}
}

func TestTDigestSingleValue(t *testing.T) {
	d := NewTDigest(DefaultCompression)
	d.Add(42)
	for _, q := range []float64{0, 0.1, 0.5, 0.9, 1} {
		if got := d.Quantile(q); got != 42 {
			t.Errorf("q=%v: got %v, want 42", q, got)
		}
	}
}

func TestTDigestUniformQuantiles(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := NewTDigest(DefaultCompression)
	xs := make([]float64, 50000)
	for i := range xs {
		xs[i] = rng.Float64() * 1000
		d.Add(xs[i])
	}
	// Paper percentiles: 10th, 50th, 90th.
	for _, q := range []float64{0.1, 0.5, 0.9} {
		got := d.Quantile(q)
		want := exactQuantile(xs, q)
		if math.Abs(got-want) > 10 { // 1% of range
			t.Errorf("q=%v: got %.2f, want %.2f", q, got, want)
		}
	}
}

func TestTDigestNormalQuantiles(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	d := NewTDigest(DefaultCompression)
	xs := make([]float64, 30000)
	for i := range xs {
		xs[i] = rng.NormFloat64()*15 + 100 // like a speed distribution
		d.Add(xs[i])
	}
	for _, q := range []float64{0.01, 0.1, 0.5, 0.9, 0.99} {
		got := d.Quantile(q)
		want := exactQuantile(xs, q)
		if math.Abs(got-want) > 1.5 {
			t.Errorf("q=%v: got %.3f, want %.3f", q, got, want)
		}
	}
}

func TestTDigestExtremes(t *testing.T) {
	d := NewTDigest(DefaultCompression)
	for i := 1; i <= 1000; i++ {
		d.Add(float64(i))
	}
	if got := d.Quantile(0); got != 1 {
		t.Errorf("q=0 must be min: got %v", got)
	}
	if got := d.Quantile(1); got != 1000 {
		t.Errorf("q=1 must be max: got %v", got)
	}
	if got := d.Quantile(-0.5); got != 1 {
		t.Errorf("q<0 clamps to min: got %v", got)
	}
	if got := d.Quantile(1.5); got != 1000 {
		t.Errorf("q>1 clamps to max: got %v", got)
	}
}

func TestTDigestQuantileMonotonic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := NewTDigest(50)
	for i := 0; i < 10000; i++ {
		d.Add(rng.ExpFloat64() * 100)
	}
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0001; q += 0.01 {
		v := d.Quantile(q)
		if v < prev-1e-9 {
			t.Fatalf("quantile not monotonic at q=%.2f: %v < %v", q, v, prev)
		}
		prev = v
	}
}

func TestTDigestCDFQuantileInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	d := NewTDigest(DefaultCompression)
	for i := 0; i < 20000; i++ {
		d.Add(rng.Float64() * 100)
	}
	for _, q := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		x := d.Quantile(q)
		back := d.CDF(x)
		if math.Abs(back-q) > 0.03 {
			t.Errorf("CDF(Quantile(%v)) = %v", q, back)
		}
	}
	if d.CDF(-1) != 0 {
		t.Error("CDF below min must be 0")
	}
	if d.CDF(1e9) != 1 {
		t.Error("CDF above max must be 1")
	}
}

func TestTDigestMergePreservesQuantiles(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	whole := NewTDigest(DefaultCompression)
	parts := make([]*TDigest, 8)
	for i := range parts {
		parts[i] = NewTDigest(DefaultCompression)
	}
	var xs []float64
	for i := 0; i < 40000; i++ {
		x := rng.NormFloat64() * 50
		xs = append(xs, x)
		whole.Add(x)
		parts[i%8].Add(x)
	}
	merged := NewTDigest(DefaultCompression)
	for _, p := range parts {
		merged.Merge(p)
	}
	if merged.Count() != 40000 {
		t.Errorf("merged count %v, want 40000", merged.Count())
	}
	for _, q := range []float64{0.1, 0.5, 0.9} {
		exact := exactQuantile(xs, q)
		if math.Abs(merged.Quantile(q)-exact) > 2.5 {
			t.Errorf("merged q=%v: got %.3f, exact %.3f", q, merged.Quantile(q), exact)
		}
	}
}

func TestTDigestCompressionBound(t *testing.T) {
	d := NewTDigest(100)
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 100000; i++ {
		d.Add(rng.Float64())
	}
	if n := d.Centroids(); n > 250 {
		t.Errorf("centroid count %d exceeds compression bound", n)
	}
}

func TestTDigestWeighted(t *testing.T) {
	d := NewTDigest(DefaultCompression)
	d.AddWeighted(10, 90)
	d.AddWeighted(100, 10)
	// With two centroids interpolation smears between them; low quantiles
	// must sit at the heavy value and high quantiles at the light one.
	if got := d.Quantile(0.3); math.Abs(got-10) > 5 {
		t.Errorf("q=0.3 of 90%% tens should be ~10, got %v", got)
	}
	if got := d.Quantile(0.99); got < 80 {
		t.Errorf("q=0.99 should approach 100, got %v", got)
	}
	if got := d.Count(); got != 100 {
		t.Errorf("count %v, want 100", got)
	}
	d.AddWeighted(5, 0)
	d.AddWeighted(5, -3)
	d.Add(math.NaN())
	if got := d.Count(); got != 100 {
		t.Error("zero/negative weight and NaN must be ignored")
	}
}

func TestTDigestBinaryRoundTrip(t *testing.T) {
	d := NewTDigest(DefaultCompression)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 5000; i++ {
		d.Add(rng.ExpFloat64() * 10)
	}
	buf := d.AppendBinary(nil)
	got, rest, err := DecodeTDigest(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Errorf("%d trailing bytes", len(rest))
	}
	if got.Count() != d.Count() {
		t.Errorf("count %v vs %v", got.Count(), d.Count())
	}
	for _, q := range []float64{0.1, 0.5, 0.9} {
		if math.Abs(got.Quantile(q)-d.Quantile(q)) > 1e-9 {
			t.Errorf("q=%v differs after round trip", q)
		}
	}
	if _, _, err := DecodeTDigest(buf[:5]); err == nil {
		t.Error("truncated input must fail")
	}
	if _, _, err := DecodeTDigest(nil); err == nil {
		t.Error("empty input must fail")
	}
}

func TestTDigestMergeNil(t *testing.T) {
	d := NewTDigest(DefaultCompression)
	d.Add(1)
	d.Merge(nil)
	if d.Count() != 1 {
		t.Error("merging nil must be a no-op")
	}
}

func BenchmarkTDigestAdd(b *testing.B) {
	d := NewTDigest(DefaultCompression)
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 1024)
	for i := range xs {
		xs[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Add(xs[i%1024])
	}
}

func BenchmarkTDigestQuantile(b *testing.B) {
	d := NewTDigest(DefaultCompression)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100000; i++ {
		d.Add(rng.Float64())
	}
	d.Quantile(0.5) // force process
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Quantile(0.9)
	}
}

func BenchmarkTDigestMerge(b *testing.B) {
	mk := func(seed int64) *TDigest {
		d := NewTDigest(DefaultCompression)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 10000; i++ {
			d.Add(rng.Float64())
		}
		d.Quantile(0.5)
		return d
	}
	x, y := mk(1), mk(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z := NewTDigest(DefaultCompression)
		z.Merge(x)
		z.Merge(y)
	}
}
