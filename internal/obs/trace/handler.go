package trace

import (
	"encoding/json"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// SpanJSON is the wire form of one finished span.
type SpanJSON struct {
	TraceID       string      `json:"traceId"`
	SpanID        string      `json:"spanId"`
	ParentID      string      `json:"parentId,omitempty"`
	Name          string      `json:"name"`
	Service       string      `json:"service"`
	StartUnixNano int64       `json:"startUnixNano"`
	DurationUs    int64       `json:"durationUs"`
	Err           bool        `json:"error,omitempty"`
	Remote        bool        `json:"remoteParent,omitempty"`
	Attrs         []Attr      `json:"attrs,omitempty"`
	Events        []Event     `json:"events,omitempty"`
	Children      []*SpanJSON `json:"children,omitempty"`
}

func (t *Tracer) spanJSON(s *Span) *SpanJSON {
	out := &SpanJSON{
		TraceID:       s.Trace.String(),
		SpanID:        s.ID.String(),
		Name:          s.Name,
		Service:       t.Service(),
		StartUnixNano: s.Start.UnixNano(),
		DurationUs:    s.End.Sub(s.Start).Microseconds(),
		Err:           s.Err,
		Remote:        s.remote,
		Attrs:         s.Attrs,
		Events:        s.Events,
	}
	if !s.Parent.IsZero() {
		out.ParentID = s.Parent.String()
	}
	return out
}

// TraceSummary is one entry in the GET /v1/traces listing.
type TraceSummary struct {
	TraceID       string `json:"traceId"`
	Root          string `json:"root"`
	Spans         int    `json:"spans"`
	Errors        int    `json:"errors"`
	StartUnixNano int64  `json:"startUnixNano"`
	DurationUs    int64  `json:"durationUs"`
}

// Summaries lists the retained traces, newest first, at most limit
// entries (limit <= 0 means all). Root names the earliest retained span
// of the trace; duration spans first start to last end across this
// process's retained spans.
func (t *Tracer) Summaries(limit int) []TraceSummary {
	byTrace := make(map[TraceID][]*Span)
	for _, s := range t.all() {
		byTrace[s.Trace] = append(byTrace[s.Trace], s)
	}
	out := make([]TraceSummary, 0, len(byTrace))
	for id, spans := range byTrace {
		sort.Slice(spans, func(i, j int) bool { return spans[i].Start.Before(spans[j].Start) })
		sum := TraceSummary{
			TraceID:       id.String(),
			Root:          spans[0].Name,
			Spans:         len(spans),
			StartUnixNano: spans[0].Start.UnixNano(),
		}
		// Prefer a true local root's name when one is retained.
		for _, s := range spans {
			if s.Parent.IsZero() {
				sum.Root = s.Name
				break
			}
		}
		end := spans[0].End
		for _, s := range spans {
			if s.Err {
				sum.Errors++
			}
			if s.End.After(end) {
				end = s.End
			}
		}
		sum.DurationUs = end.Sub(spans[0].Start).Microseconds()
		out = append(out, sum)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].StartUnixNano > out[j].StartUnixNano })
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// Tree assembles one trace's retained spans into parent→children trees.
// Spans whose parent is not retained in this process (remote parents,
// ring-evicted parents) surface as top-level roots, so a partial trace
// still renders.
func (t *Tracer) Tree(id TraceID) []*SpanJSON {
	spans := t.Spans(id)
	sort.Slice(spans, func(i, j int) bool { return spans[i].Start.Before(spans[j].Start) })
	nodes := make(map[SpanID]*SpanJSON, len(spans))
	for _, s := range spans {
		nodes[s.ID] = t.spanJSON(s)
	}
	var roots []*SpanJSON
	for _, s := range spans {
		n := nodes[s.ID]
		if !s.Parent.IsZero() {
			if p, ok := nodes[s.Parent]; ok {
				p.Children = append(p.Children, n)
				continue
			}
		}
		roots = append(roots, n)
	}
	return roots
}

// Handler serves the trace query surface:
//
//	GET /v1/traces        — retained trace summaries, newest first (?n= caps)
//	GET /v1/traces/{id}   — one trace as a JSON span tree
//
// Mount it at /v1/traces and /v1/traces/ on a daemon's mux. A nil tracer
// answers 404 for everything.
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if t == nil {
			http.NotFound(w, r)
			return
		}
		rest := strings.TrimPrefix(r.URL.Path, "/v1/traces")
		rest = strings.Trim(rest, "/")
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if rest == "" {
			limit := 50
			if v := r.URL.Query().Get("n"); v != "" {
				if n, err := strconv.Atoi(v); err == nil {
					limit = n
				}
			}
			_ = enc.Encode(map[string]any{
				"service": t.Service(),
				"spans":   t.SpanCount(),
				"traces":  t.Summaries(limit),
			})
			return
		}
		id, ok := ParseTraceID(rest)
		if !ok {
			w.WriteHeader(http.StatusBadRequest)
			_ = enc.Encode(map[string]string{"error": "malformed trace id"})
			return
		}
		tree := t.Tree(id)
		if len(tree) == 0 {
			w.WriteHeader(http.StatusNotFound)
			_ = enc.Encode(map[string]string{"error": "trace not retained"})
			return
		}
		_ = enc.Encode(map[string]any{
			"traceId": id.String(),
			"service": t.Service(),
			"spans":   tree,
		})
	})
}

// Mount registers the trace query surface on a mux under /v1/traces.
// Safe on a nil tracer (registers nothing).
func (t *Tracer) Mount(mux *http.ServeMux) {
	if t == nil || mux == nil {
		return
	}
	h := t.Handler()
	mux.Handle("GET /v1/traces", h)
	mux.Handle("GET /v1/traces/", h)
}
